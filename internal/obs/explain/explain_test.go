package explain

import (
	"math"
	"testing"

	"lbkeogh/internal/obs"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

func TestFromCountsReconciles(t *testing.T) {
	c := obs.Counts{
		Comparisons:        10,
		Rotations:          1000,
		FFTRejectedMembers: 120,
		WedgePrunedMembers: 400,
		WedgeLeafLBPrunes:  80,
		EarlyAbandons:      250,
		FullDistEvals:      100,
		CancelledMembers:   50,
	}
	if !c.Reconciles() {
		t.Fatal("test fixture counts must reconcile")
	}
	wf := FromCounts(c)
	if !wf.Reconciles() {
		t.Fatalf("waterfall from reconciling counts must reconcile: %+v", wf)
	}
	if got := wf.Stage(StageFFT); got != 120 {
		t.Errorf("fft stage = %d, want 120", got)
	}
	if got := wf.Stage(StageEnvelope); got != 480 {
		t.Errorf("envelope stage = %d, want 480", got)
	}
	if got := wf.Stage(StageKernel); got != 250 {
		t.Errorf("kernel stage = %d, want 250", got)
	}
	if got := wf.Stage(StagePAA); got != 0 {
		t.Errorf("paa stage = %d, want 0 for in-memory scans", got)
	}
	if wf.Survivors != 100 || wf.Cancelled != 50 {
		t.Errorf("survivors/cancelled = %d/%d, want 100/50", wf.Survivors, wf.Cancelled)
	}
	// Four stages in cascade order, always present.
	want := []string{StageFFT, StagePAA, StageEnvelope, StageKernel}
	if len(wf.Eliminated) != len(want) {
		t.Fatalf("got %d stages, want %d", len(wf.Eliminated), len(want))
	}
	for i, s := range wf.Eliminated {
		if s.Stage != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Stage, want[i])
		}
	}
}

func TestFromCountsBrokenDelta(t *testing.T) {
	wf := FromCounts(obs.Counts{Rotations: 10, FullDistEvals: 3})
	if wf.Reconciles() {
		t.Fatal("waterfall over a non-reconciling delta must not reconcile")
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{0.049, 0},
		{0.05, 1},
		{0.51, 10},
		{0.999, 19},
		{1.0, 19}, // exactly 1 stays in the last regular bucket
		{1.01, NumRatioBuckets},
		{5, NumRatioBuckets},
		{-0.1, NumRatioBuckets},
		{math.NaN(), NumRatioBuckets},
		{math.Inf(1), NumRatioBuckets},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestAggObserveAndSummary(t *testing.T) {
	var a Agg
	// A killed candidate (true 10 >= threshold 5) whose fft bound passed the
	// threshold (false positive) and whose envelope bound eliminated it.
	s := Sample{
		Threshold: 5,
		Bounds: []BoundValue{
			{Bound: StageFFT, Value: 4},      // ratio 0.4, false positive
			{Bound: StageEnvelope, Value: 8}, // ratio 0.8, eliminated here
		},
		True:         10,
		EliminatedBy: StageEnvelope,
	}
	touched := a.Observe(s, nil)
	if len(touched) != 2 {
		t.Fatalf("touched %d buckets, want 2", len(touched))
	}
	// A surviving candidate below the threshold.
	a.Observe(Sample{
		Threshold: 20,
		Bounds: []BoundValue{
			{Bound: StageFFT, Value: 5},
			{Bound: StageEnvelope, Value: 9},
		},
		True: 10,
	}, nil)
	if a.Samples() != 2 || a.Survived() != 1 || a.KernelKills() != 0 {
		t.Fatalf("samples/survived/kills = %d/%d/%d, want 2/1/0",
			a.Samples(), a.Survived(), a.KernelKills())
	}
	sum := a.Summary()
	if len(sum) != 2 {
		t.Fatalf("got %d bound summaries, want 2", len(sum))
	}
	fft := sum[0]
	if fft.Bound != StageFFT {
		t.Fatalf("first-seen order broken: %q first", fft.Bound)
	}
	if fft.Checks != 2 || fft.FalsePositives != 1 {
		t.Errorf("fft checks/fp = %d/%d, want 2/1", fft.Checks, fft.FalsePositives)
	}
	if fft.FalsePositiveFraction != 0.5 {
		t.Errorf("fft fp fraction = %v, want 0.5", fft.FalsePositiveFraction)
	}
	env := sum[1]
	if env.Eliminated != 1 || env.FalsePositives != 0 {
		t.Errorf("envelope eliminated/fp = %d/%d, want 1/0", env.Eliminated, env.FalsePositives)
	}
	if env.MeanRatio < 0.84 || env.MeanRatio > 0.86 {
		t.Errorf("envelope mean ratio = %v, want ~0.85", env.MeanRatio)
	}
	// Exemplar tagging lands on the touched buckets.
	a.tag(touched, 42)
	sum = a.Summary()
	var tagged int
	for _, bt := range sum {
		for _, bk := range bt.Buckets {
			if bk.ExemplarTraceID == 42 {
				tagged++
			}
		}
	}
	if tagged != 2 {
		t.Errorf("tagged %d exemplar buckets, want 2", tagged)
	}
}

func TestRecorderInterval(t *testing.T) {
	r := NewRecorder(4)
	var yes int
	for i := 0; i < 16; i++ {
		if r.ShouldSample() {
			yes++
		}
	}
	if yes != 4 {
		t.Fatalf("sampled %d of 16 at interval 4, want 4", yes)
	}
	var nilRec *Recorder
	if nilRec.ShouldSample() {
		t.Fatal("nil recorder must never sample")
	}
	nilRec.Observe(Sample{}, nil) // must not panic
	nilRec.Tag(nil, 1)
	if snap := nilRec.Snapshot(); snap.Seen != 0 {
		t.Fatalf("nil recorder snapshot = %+v, want zero", snap)
	}
}

// buildContext constructs a QueryContext over the rotations of a synthetic
// base series, the way a compiled query does.
func buildContext(t *testing.T, kernel wedge.Kernel, n int) (*QueryContext, [][]float64) {
	t.Helper()
	rng := ts.NewRand(7)
	base := make([]float64, n)
	for i := range base {
		base[i] = rng.Float64()*2 - 1
	}
	members := make([][]float64, n)
	for s := 0; s < n; s++ {
		rot := make([]float64, n)
		for i := range rot {
			rot[i] = base[(i+s)%n]
		}
		members[s] = rot
	}
	var tally stats.Tally
	tree := wedge.Build(members, func(i, j int) float64 {
		var acc float64
		for k := range members[i] {
			d := members[i][k] - members[j][k]
			acc += d * d
		}
		return math.Sqrt(acc)
	}, &tally)
	qc := NewQueryContext(base, len(members), func(i int) []float64 { return members[i] }, tree, kernel)
	return qc, members
}

// TestMeasureAdmissibility checks the core soundness property the telemetry
// reports on: every measured bound is a true lower bound of the measured
// rotation-invariant distance, for every kernel it claims to apply to.
func TestMeasureAdmissibility(t *testing.T) {
	const n = 32
	kernels := []struct {
		name    string
		k       wedge.Kernel
		wantFFT bool
		wantPAA bool
	}{
		{"ED", wedge.ED{}, true, true},
		{"DTW", wedge.DTW{R: 3}, false, true},
		{"LCSS", wedge.LCSS{Delta: 3, Eps: 0.25}, false, false},
	}
	rng := ts.NewRand(99)
	for _, kc := range kernels {
		t.Run(kc.name, func(t *testing.T) {
			qc, _ := buildContext(t, kc.k, n)
			for trial := 0; trial < 8; trial++ {
				x := make([]float64, n)
				for i := range x {
					x[i] = rng.Float64()*2 - 1
				}
				s := qc.Measure(x, -1)
				if s.EliminatedBy != "" {
					t.Fatalf("no-threshold measurement eliminated by %q", s.EliminatedBy)
				}
				var haveFFT, havePAA bool
				for _, b := range s.Bounds {
					switch b.Bound {
					case StageFFT:
						haveFFT = true
					case StagePAA:
						havePAA = true
					}
					if b.Value > s.True+1e-9 {
						t.Errorf("trial %d: %s bound %v exceeds true distance %v",
							trial, b.Bound, b.Value, s.True)
					}
				}
				if haveFFT != kc.wantFFT {
					t.Errorf("fft bound present=%v, want %v", haveFFT, kc.wantFFT)
				}
				if havePAA != kc.wantPAA {
					t.Errorf("paa bound present=%v, want %v", havePAA, kc.wantPAA)
				}
				// The envelope bound always closes the cascade.
				if s.Bounds[len(s.Bounds)-1].Bound != StageEnvelope {
					t.Errorf("last bound = %q, want envelope", s.Bounds[len(s.Bounds)-1].Bound)
				}
			}
		})
	}
}

// TestMeasureEliminationOrder: a threshold below every bound value must be
// attributed to the first cascade stage that reaches it.
func TestMeasureEliminationOrder(t *testing.T) {
	const n = 32
	qc, members := buildContext(t, wedge.ED{}, n)
	// The candidate IS a member, so the true distance is 0 and any positive
	// threshold keeps it alive through every stage.
	s := qc.Measure(members[3], 1e-6)
	if s.True > 1e-9 {
		t.Fatalf("member's true distance = %v, want ~0", s.True)
	}
	if s.EliminatedBy != "" {
		t.Fatalf("member eliminated by %q, want survival", s.EliminatedBy)
	}
	// An unrelated far candidate with a tiny threshold dies at the first
	// applicable stage with a positive bound.
	far := make([]float64, n)
	for i := range far {
		far[i] = 100
	}
	s = qc.Measure(far, 1e-6)
	if s.EliminatedBy == "" || s.EliminatedBy == StageKernel {
		t.Fatalf("far candidate eliminated by %q, want a bound stage", s.EliminatedBy)
	}
}

func TestOpSamplingAndReset(t *testing.T) {
	qc, members := buildContext(t, wedge.ED{}, 16)
	sink := NewRecorder(1) // sample everything
	op := NewOp(qc, sink, true)
	for i := 0; i < 5; i++ {
		op.BeforeComparison(members[i%len(members)], -1)
		op.RecordComparison(obs.Counts{Rotations: 16}, float64(i), true, false)
	}
	if got := sink.Snapshot().Sampled; got != 5 {
		t.Fatalf("sink sampled %d, want 5", got)
	}
	// Attribution interval: ordinals 0 and 4 of the 5 comparisons.
	if got := op.LocalSamples(); got != 2 {
		t.Fatalf("local samples = %d, want 2 (every %d)", got, DefaultOpInterval)
	}
	if got := len(op.Comparisons()); got != 5 {
		t.Fatalf("recorded %d comparisons, want 5", got)
	}
	op.FinishTrace(7)
	op.Reset()
	if op.LocalSamples() != 0 || len(op.Comparisons()) != 0 {
		t.Fatal("Reset must clear local state")
	}
}
