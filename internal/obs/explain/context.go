package explain

import (
	"math"

	"lbkeogh/internal/envelope"
	"lbkeogh/internal/fourier"
	"lbkeogh/internal/paa"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/wedge"
)

// DefaultPAADims is the PAA segment count used for tightness measurement,
// matching the paper's mid-range compressed dimensionality (D = 8 of the
// {4, 8, 16, 32} sweep).
const DefaultPAADims = 8

// QueryContext holds everything needed to re-derive the full bound waterfall
// for one query against an arbitrary candidate: the exact kernel, the
// rotation members (for the true rotation-invariant distance), the root
// wedge envelope already widened for the kernel, and the compressed-space
// query features. Build one per compiled query and reuse it across sampled
// comparisons; construction does the feature transforms once.
type QueryContext struct {
	kernel   wedge.Kernel
	n        int
	members  int
	memberAt func(int) []float64

	rootEnv  envelope.Envelope
	queryMag []float64 // nil unless the FFT bound applies (Euclidean only)
	box      paa.Box
	paaDims  int
	hasPAA   bool
}

// NewQueryContext prepares measurement state for a query whose rotation set
// has the given members (memberAt(i) returns rotation i), wedge tree and
// kernel. base is the unrotated query series.
//
// Which bounds apply follows the admissibility rules the strategies
// themselves obey: the FFT-magnitude bound is rotation invariant only for
// the Euclidean measure; the PAA box bound is admissible for Euclidean and
// (via the DTW-expanded envelope) DTW, but not for the LCSS similarity; the
// LB_Keogh envelope bound applies to all three kernels.
func NewQueryContext(base []float64, members int, memberAt func(int) []float64, tree *wedge.Tree, kernel wedge.Kernel) *QueryContext {
	n := len(base)
	qc := &QueryContext{
		kernel:   kernel,
		n:        n,
		members:  members,
		memberAt: memberAt,
		rootEnv:  tree.FrontierEnvelopes(1, kernel.Radius())[0],
	}
	switch kernel.(type) {
	case wedge.ED:
		qc.queryMag = fourier.Magnitudes(base, n/2)
		qc.hasPAA = true
	case wedge.DTW:
		qc.hasPAA = true
	}
	if qc.hasPAA {
		qc.paaDims = DefaultPAADims
		if qc.paaDims > n {
			qc.paaDims = n
		}
		qc.box = paa.ReduceEnvelope(qc.rootEnv, qc.paaDims)
	}
	return qc
}

// BoundValue is one measured waterfall stage.
type BoundValue struct {
	Bound string  `json:"bound"`
	Value float64 `json:"value"`
}

// Sample is the full measured waterfall of one candidate comparison: every
// applicable bound's value, the true rotation-invariant distance, the
// threshold in effect, and the first cascade stage that would have
// eliminated the candidate ("" when it survives every stage).
type Sample struct {
	Ref          int          `json:"ref"`
	Threshold    float64      `json:"threshold"`
	Bounds       []BoundValue `json:"bounds"`
	True         float64      `json:"true"`
	EliminatedBy string       `json:"eliminated_by,omitempty"`
}

// Measure computes the waterfall for candidate x under pruning threshold r
// (r < 0 means no threshold: nothing is eliminated). The computation is
// charged to a private tally, never to the query's counters, so sampling
// does not perturb the statistics it is meant to explain.
func (qc *QueryContext) Measure(x []float64, r float64) Sample {
	var t stats.Tally
	s := Sample{Threshold: r}
	if qc.queryMag != nil {
		cm := fourier.Magnitudes(x, len(qc.queryMag))
		s.Bounds = append(s.Bounds, BoundValue{
			Bound: fourier.BoundName,
			Value: fourier.LowerBoundED(qc.queryMag, cm),
		})
	}
	if qc.hasPAA {
		s.Bounds = append(s.Bounds, BoundValue{
			Bound: paa.BoundName,
			Value: paa.LowerBound(paa.Reduce(x, qc.paaDims), qc.box, qc.n),
		})
	}
	lb, _ := qc.kernel.LowerBound(x, qc.rootEnv, -1, &t)
	s.Bounds = append(s.Bounds, BoundValue{Bound: envelope.BoundName, Value: lb})

	best := math.Inf(1)
	for i := 0; i < qc.members; i++ {
		if d, aborted := qc.kernel.Distance(x, qc.memberAt(i), -1, &t); !aborted && d < best {
			best = d
		}
	}
	s.True = best
	s.EliminatedBy = eliminatedBy(s)
	return s
}

// eliminatedBy returns the first cascade stage whose value reaches the
// threshold, the kernel stage when only the exact distance does, or "" for a
// surviving candidate (including the no-threshold case).
func eliminatedBy(s Sample) string {
	if s.Threshold < 0 {
		return ""
	}
	for _, b := range s.Bounds {
		if b.Value >= s.Threshold {
			return b.Bound
		}
	}
	if s.True >= s.Threshold {
		return StageKernel
	}
	return ""
}
