package explain

import (
	"sync"
	"sync/atomic"
)

// Recorder is the shared, long-lived tightness sink: queries ask it whether
// to sample each comparison (every Nth across all queries feeding the
// recorder) and fold the measured waterfall samples into one aggregate. A
// nil *Recorder is a valid no-op sink — ShouldSample on nil costs one nil
// check and returns false, which is the entire disabled-path overhead.
type Recorder struct {
	every   int64
	seen    atomic.Int64
	sampled atomic.Int64

	mu  sync.Mutex
	agg Agg
}

// NewRecorder returns a recorder sampling every n-th comparison (n < 1 is
// clamped to 1, i.e. sample everything).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{every: int64(n)}
}

// ShouldSample counts one comparison seen and reports whether it is the
// recorder's turn to sample it. Safe on a nil receiver (always false) and
// for concurrent use.
func (r *Recorder) ShouldSample() bool {
	if r == nil {
		return false
	}
	return r.seen.Add(1)%r.every == 0
}

// Observe folds one measured sample into the aggregate, appending the
// touched histogram cells to touched (see Agg.Observe) for later exemplar
// tagging. Safe on a nil receiver (no-op).
func (r *Recorder) Observe(s Sample, touched []BucketRef) []BucketRef {
	if r == nil {
		return touched
	}
	r.sampled.Add(1)
	r.mu.Lock()
	touched = r.agg.Observe(s, touched)
	r.mu.Unlock()
	return touched
}

// Tag attaches trace id tid as the exemplar of every referenced bucket,
// correlating tightness cells to recorded traces. Safe on a nil receiver.
func (r *Recorder) Tag(refs []BucketRef, tid int64) {
	if r == nil || len(refs) == 0 || tid == 0 {
		return
	}
	r.mu.Lock()
	r.agg.tag(refs, tid)
	r.mu.Unlock()
}

// RecorderSnapshot is a point-in-time copy of the recorder's aggregate.
type RecorderSnapshot struct {
	Seen        int64            `json:"seen"`
	Sampled     int64            `json:"sampled"`
	Interval    int64            `json:"interval"`
	Samples     int64            `json:"samples"`
	KernelKills int64            `json:"kernel_kills"`
	Survived    int64            `json:"survived"`
	Bounds      []BoundTightness `json:"bounds,omitempty"`
}

// Snapshot copies the aggregate out under the lock. Safe on a nil receiver
// (zero snapshot).
func (r *Recorder) Snapshot() RecorderSnapshot {
	if r == nil {
		return RecorderSnapshot{}
	}
	snap := RecorderSnapshot{
		Seen:     r.seen.Load(),
		Sampled:  r.sampled.Load(),
		Interval: r.every,
	}
	r.mu.Lock()
	snap.Samples = r.agg.Samples()
	snap.KernelKills = r.agg.KernelKills()
	snap.Survived = r.agg.Survived()
	snap.Bounds = r.agg.Summary()
	r.mu.Unlock()
	return snap
}
