package explain

import "math"

// Tightness-ratio histogram shape: NumRatioBuckets fixed-width buckets cover
// ratios in [0, 1] (an admissible bound never exceeds the true distance, so
// the ratio lives there up to float fuzz) plus one overflow bucket for
// anything beyond 1 — a non-empty overflow bucket is itself a diagnostic.
const (
	NumRatioBuckets  = 20
	RatioBucketWidth = 0.05
)

// bucketFor maps a tightness ratio to its bucket index, with index
// NumRatioBuckets as the overflow bucket (ratios above 1, NaN, negatives).
func bucketFor(v float64) int {
	if !(v >= 0) || math.IsInf(v, 1) {
		return NumRatioBuckets
	}
	idx := int(v / RatioBucketWidth)
	if idx >= NumRatioBuckets {
		if v <= 1 {
			return NumRatioBuckets - 1
		}
		return NumRatioBuckets
	}
	return idx
}

// BucketRef identifies one histogram cell an observation landed in, so a
// caller can attach an exemplar (the query's trace id) after the trace
// completes.
type BucketRef struct {
	Bound  string
	Bucket int
	Value  float64
}

// boundAgg accumulates one bound's tightness evidence.
type boundAgg struct {
	name     string
	samples  int64
	sum      float64
	buckets  [NumRatioBuckets + 1]int64
	exTrace  [NumRatioBuckets + 1]int64 // exemplar trace id per bucket; 0 = none
	exValue  [NumRatioBuckets + 1]float64
	checks   int64
	falsePos int64
	elim     int64
}

// Agg accumulates waterfall samples: per-bound tightness histograms,
// false-positive counts, and elimination attribution. Not safe for
// concurrent use; Recorder adds the locking for the shared sink, while each
// query's Op keeps a private one.
type Agg struct {
	bounds      []*boundAgg
	byName      map[string]*boundAgg
	samples     int64
	kernelKills int64
	survived    int64
}

func (a *Agg) boundFor(name string) *boundAgg {
	if a.byName == nil {
		a.byName = make(map[string]*boundAgg)
	}
	b := a.byName[name]
	if b == nil {
		b = &boundAgg{name: name}
		a.byName[name] = b
		a.bounds = append(a.bounds, b)
	}
	return b
}

// Observe folds one sample in. For each measured bound it counts the check,
// the tightness ratio bound/true (when the true distance is finite and
// positive), a false positive when the bound passed the threshold but the
// kernel killed the candidate, and the elimination when this bound was the
// first to reach the threshold. Bucket refs for every histogram cell touched
// are appended to touched and returned, so the caller can tag exemplars once
// the trace id is known.
func (a *Agg) Observe(s Sample, touched []BucketRef) []BucketRef {
	a.samples++
	switch s.EliminatedBy {
	case "":
		a.survived++
	case StageKernel:
		a.kernelKills++
	}
	killed := s.Threshold >= 0 && s.True >= s.Threshold
	for _, bv := range s.Bounds {
		b := a.boundFor(bv.Bound)
		b.checks++
		if s.True > 0 && !math.IsInf(s.True, 1) && !math.IsInf(bv.Value, 1) {
			ratio := bv.Value / s.True
			bk := bucketFor(ratio)
			b.samples++
			b.sum += ratio
			b.buckets[bk]++
			touched = append(touched, BucketRef{Bound: bv.Bound, Bucket: bk, Value: ratio})
		}
		if killed && bv.Value < s.Threshold {
			b.falsePos++
		}
		if s.EliminatedBy == bv.Bound {
			b.elim++
		}
	}
	return touched
}

// tag attaches trace id tid as the exemplar of every referenced bucket,
// overwriting older exemplars so the freshest correlated trace wins.
func (a *Agg) tag(refs []BucketRef, tid int64) {
	for _, ref := range refs {
		b := a.byName[ref.Bound]
		if b == nil || ref.Bucket < 0 || ref.Bucket >= len(b.exTrace) {
			continue
		}
		b.exTrace[ref.Bucket] = tid
		b.exValue[ref.Bucket] = ref.Value
	}
}

// RatioBucket is one cumulative-histogram cell of a tightness summary.
// UpperBound is the bucket's inclusive upper edge (the exposition `le`);
// Count is the non-cumulative cell count. ExemplarTraceID, when non-zero,
// correlates the cell to a recorded trace.
type RatioBucket struct {
	UpperBound      float64 `json:"le"`
	Count           int64   `json:"count"`
	ExemplarTraceID int64   `json:"exemplar_trace_id,omitempty"`
	ExemplarValue   float64 `json:"exemplar_value,omitempty"`
}

// BoundTightness summarizes one bound's evidence: how often it was checked,
// the distribution of bound/true, how often it passed a candidate the kernel
// then killed, and how many candidates it eliminated first.
type BoundTightness struct {
	Bound                 string        `json:"bound"`
	Samples               int64         `json:"samples"`
	SumRatio              float64       `json:"sum_ratio"`
	MeanRatio             float64       `json:"mean_ratio"`
	P50Ratio              float64       `json:"p50_ratio"`
	P90Ratio              float64       `json:"p90_ratio"`
	Checks                int64         `json:"checks"`
	FalsePositives        int64         `json:"false_positives"`
	FalsePositiveFraction float64       `json:"false_positive_fraction"`
	Eliminated            int64         `json:"eliminated"`
	Buckets               []RatioBucket `json:"buckets,omitempty"`
}

// overflowQuantile is what a quantile landing in the overflow bucket
// reports: just past 1, finite so it survives JSON encoding.
const overflowQuantile = 1.0 + RatioBucketWidth

// quantile returns the nearest-rank q-quantile's bucket upper edge.
func (b *boundAgg) quantile(q float64) float64 {
	if b.samples == 0 {
		return 0
	}
	rank := int64(math.Floor(q*float64(b.samples) + 0.5))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range b.buckets {
		cum += c
		if cum >= rank {
			if i == NumRatioBuckets {
				return overflowQuantile
			}
			return float64(i+1) * RatioBucketWidth
		}
	}
	return overflowQuantile
}

func (b *boundAgg) summary() BoundTightness {
	t := BoundTightness{
		Bound:          b.name,
		Samples:        b.samples,
		SumRatio:       b.sum,
		Checks:         b.checks,
		FalsePositives: b.falsePos,
		Eliminated:     b.elim,
		P50Ratio:       b.quantile(0.50),
		P90Ratio:       b.quantile(0.90),
	}
	if b.samples > 0 {
		t.MeanRatio = b.sum / float64(b.samples)
	}
	if b.checks > 0 {
		t.FalsePositiveFraction = float64(b.falsePos) / float64(b.checks)
	}
	for i, c := range b.buckets {
		// The overflow bucket's edge is reported as overflowQuantile rather
		// than +Inf so the summary survives encoding/json; metrics emission
		// still writes the exposition bucket as le="+Inf" by position.
		ub := float64(i+1) * RatioBucketWidth
		if i == NumRatioBuckets {
			ub = overflowQuantile
		}
		t.Buckets = append(t.Buckets, RatioBucket{
			UpperBound:      ub,
			Count:           c,
			ExemplarTraceID: b.exTrace[i],
			ExemplarValue:   b.exValue[i],
		})
	}
	return t
}

// Summary returns the per-bound tightness summaries in first-seen (cascade)
// order.
func (a *Agg) Summary() []BoundTightness {
	out := make([]BoundTightness, 0, len(a.bounds))
	for _, b := range a.bounds {
		out = append(out, b.summary())
	}
	return out
}

// Samples reports how many waterfall samples were folded in.
func (a *Agg) Samples() int64 { return a.samples }

// KernelKills reports samples whose candidate passed every bound but was
// killed by the exact kernel.
func (a *Agg) KernelKills() int64 { return a.kernelKills }

// Survived reports samples whose candidate survived every stage.
func (a *Agg) Survived() int64 { return a.survived }
