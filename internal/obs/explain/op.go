package explain

import "lbkeogh/internal/obs"

// DefaultOpInterval is the per-query sampling interval when full EXPLAIN
// attribution is on: every 4th comparison gets the full waterfall
// measurement, enough for a stable per-query tightness summary without
// quadrupling the query's cost.
const DefaultOpInterval = 4

// Comparison is the per-candidate record an attributing Op keeps: the
// counter delta the comparison spent (from which the admitting bound is
// derived), the resulting distance, and the match flags. Its slice index in
// Op.Comparisons is the comparison ordinal — the database index for serial
// scans.
type Comparison struct {
	Delta   obs.Counts `json:"delta"`
	Dist    float64    `json:"dist"`
	Found   bool       `json:"found"`
	Aborted bool       `json:"aborted"`
}

// Op is the per-query explain state threaded through a searcher: it decides
// which comparisons to measure (feeding both the shared Recorder sink and,
// when attribution is on, a query-local aggregate) and, under attribution,
// records every comparison's counter delta for the plan's survivor
// annotations. An Op is single-goroutine, like the searcher it rides.
type Op struct {
	qc          *QueryContext
	sink        *Recorder
	attribution bool

	seen    int64
	comps   []Comparison
	local   Agg
	touched []BucketRef
}

// NewOp creates explain state over query context qc. sink (may be nil)
// receives cross-query tightness samples at its own interval; attribution
// additionally turns on per-comparison delta recording and a query-local
// tightness aggregate sampled every DefaultOpInterval comparisons.
func NewOp(qc *QueryContext, sink *Recorder, attribution bool) *Op {
	return &Op{qc: qc, sink: sink, attribution: attribution}
}

// Attribution reports whether the op wants per-comparison deltas recorded.
func (o *Op) Attribution() bool { return o.attribution }

// BeforeComparison runs the sampled waterfall measurement for candidate x
// under threshold r when either the shared sink's or the local attribution
// interval elects this comparison. Measurement never charges the query's
// counters.
func (o *Op) BeforeComparison(x []float64, r float64) {
	ord := o.seen
	o.seen++
	sinkWants := o.sink.ShouldSample()
	localWants := o.attribution && ord%DefaultOpInterval == 0
	if !sinkWants && !localWants {
		return
	}
	s := o.qc.Measure(x, r)
	s.Ref = int(ord)
	if sinkWants {
		o.touched = o.sink.Observe(s, o.touched)
	}
	if localWants {
		o.local.Observe(s, nil)
	}
}

// RecordComparison records one finished comparison's delta and outcome;
// no-op unless attribution is on.
func (o *Op) RecordComparison(delta obs.Counts, dist float64, found, aborted bool) {
	if !o.attribution {
		return
	}
	o.comps = append(o.comps, Comparison{Delta: delta, Dist: dist, Found: found, Aborted: aborted})
}

// Reset clears per-query state for reuse across searches on the same query.
func (o *Op) Reset() {
	o.seen = 0
	o.comps = nil
	o.touched = o.touched[:0]
	o.local = Agg{}
}

// FinishTrace tags the sink exemplars touched during this query with the
// completed trace's id (0 = untraced, no tagging) and releases the refs.
func (o *Op) FinishTrace(tid int64) {
	if len(o.touched) > 0 {
		o.sink.Tag(o.touched, tid)
		o.touched = o.touched[:0]
	}
}

// Comparisons returns the recorded per-comparison records (attribution only;
// nil otherwise). The slice is owned by the op and valid until Reset.
func (o *Op) Comparisons() []Comparison { return o.comps }

// LocalTightness summarizes the query-local tightness aggregate.
func (o *Op) LocalTightness() []BoundTightness { return o.local.Summary() }

// LocalSamples reports how many comparisons the local aggregate measured.
func (o *Op) LocalSamples() int64 { return o.local.Samples() }
