// Package explain is the pruning-diagnostics layer: it measures, for a
// sampled subset of candidate comparisons, the full bound waterfall the paper
// argues from — FFT-magnitude bound, PAA box bound, LB_Keogh envelope bound,
// then the exact kernel — recording each stage's value, the true
// rotation-invariant distance, and which stage eliminated the candidate.
//
// Keogh et al.'s case for LB_Keogh rests on the ratio of the lower bound to
// the true distance (the closer to 1, the better the pruning); this package
// turns that ratio into continuously collected telemetry: per-bound tightness
// histograms, false-positive attribution ("passed the bound, killed by the
// kernel"), and a waterfall breakdown whose stage counts reconcile exactly
// with the obs.Counts identity. Those per-stage counters are the baseline a
// future cheap→tight cascade (e.g. Lemire's LB_Improved second pass) must
// beat.
//
// Everything here lives off the hot path: a disabled sampler costs one nil
// check per comparison, and measurement never charges the query's own
// counters (bounds and true distances are recomputed against a private
// tally).
package explain

import "lbkeogh/internal/obs"

// Stage tags, re-exported here so waterfall consumers need not import every
// bound package. The canonical definitions live next to each bound.
const (
	StageFFT      = "fft"      // fourier.BoundName
	StagePAA      = "paa"      // paa.BoundName
	StageEnvelope = "envelope" // envelope.BoundName
	StageKernel   = "kernel"   // wedge.KernelStageName
)

// StageCount is one waterfall stage with the number of rotations it
// eliminated.
type StageCount struct {
	Stage   string `json:"stage"`
	Members int64  `json:"members"`
}

// Waterfall is the pruning breakdown of a scan: how many rotations each
// cascade stage disposed of, in cascade order, plus the survivors that
// required a full kernel evaluation and any rotations a cancellation left
// undisposed.
type Waterfall struct {
	Comparisons int64 `json:"comparisons"`
	Rotations   int64 `json:"rotations"`
	// Eliminated lists the stages in cascade order (fft, paa, envelope,
	// kernel). The paa stage only eliminates on the disk-index path, so it is
	// zero for in-memory scans; it stays in the list to keep the cascade
	// shape stable for dashboards.
	Eliminated []StageCount `json:"eliminated"`
	// Survivors is the number of rotations whose exact distance was computed
	// to completion (obs FullDistEvals).
	Survivors int64 `json:"survivors"`
	Cancelled int64 `json:"cancelled,omitempty"`
}

// FromCounts derives the waterfall from a counter delta. The mapping follows
// the obs reconciliation identity term by term — fft eliminates
// FFTRejectedMembers, the envelope stage eliminates both internal-wedge and
// singleton-wedge LB prunes, the kernel stage eliminates early abandons —
// so a waterfall built from a reconciling delta reconciles by construction.
func FromCounts(c obs.Counts) Waterfall {
	return Waterfall{
		Comparisons: c.Comparisons,
		Rotations:   c.Rotations,
		Eliminated: []StageCount{
			{Stage: StageFFT, Members: c.FFTRejectedMembers},
			{Stage: StagePAA, Members: 0},
			{Stage: StageEnvelope, Members: c.WedgePrunedMembers + c.WedgeLeafLBPrunes},
			{Stage: StageKernel, Members: c.EarlyAbandons},
		},
		Survivors: c.FullDistEvals,
		Cancelled: c.CancelledMembers,
	}
}

// Reconciles reports whether the eliminated stages, survivors and cancelled
// rotations account for every rotation covered — the waterfall form of the
// obs.Counts identity.
func (w Waterfall) Reconciles() bool {
	total := w.Survivors + w.Cancelled
	for _, s := range w.Eliminated {
		total += s.Members
	}
	return w.Rotations == total
}

// Stage returns the eliminated-member count of the named stage (0 when the
// stage is absent).
func (w Waterfall) Stage(name string) int64 {
	for _, s := range w.Eliminated {
		if s.Stage == name {
			return s.Members
		}
	}
	return 0
}
