// Package obs is the zero-dependency instrumentation layer for the search
// machinery. The paper's entire empirical argument (Tables 1–3, Section 5.3)
// rests on *where* cost goes — wedge prunes vs. early abandons vs. full
// distance evaluations — so every search strategy threads a *SearchStats
// record through and attributes each rotation it disposes of to exactly one
// outcome bucket. The buckets reconcile: for any sequence of comparisons,
//
//	Rotations = FullDistEvals + EarlyAbandons + WedgePrunedMembers
//	          + WedgeLeafLBPrunes + FFTRejectedMembers + CancelledMembers
//
// which is the per-bound pruning-rate telemetry that tuning cascaded lower
// bounds requires (cf. Lemire's two-pass LB_Keogh work). CancelledMembers
// is the serving-layer term: rotations left undisposed when a cooperative
// cancellation checkpoint stopped a scan mid-comparison, so even a
// deadline-bounded search accounts for every rotation it covered.
//
// Everything here is safe for concurrent use: counters are atomics, the
// histogram buckets are atomics, and the dynamic-K trajectory is guarded by
// a small mutex on a bounded slice. A nil *SearchStats is a valid no-op sink
// everywhere — uninstrumented hot paths pay one predictable branch per call
// — and the same nil contract applies to the Tracer helpers in this package.
package obs

import (
	"sync"
	"sync/atomic"
)

// MaxPruneLevels bounds the per-dendrogram-level wedge-prune breakdown.
// Levels at or beyond the bound are folded into the last bucket (a balanced
// wedge hierarchy over n rotations has ~log2(n) levels; 32 covers any n that
// fits in memory).
const MaxPruneLevels = 32

// maxKTrajectory caps the recorded dynamic-K trajectory so adversarially
// jittery controllers cannot grow the record without bound.
const maxKTrajectory = 1024

// KChange is one dynamic-K controller adjustment: after Comparison
// comparisons, the settled wedge-set size moved From -> To.
type KChange struct {
	Comparison int64 `json:"comparison"`
	From       int   `json:"from"`
	To         int   `json:"to"`
}

// SearchStats accumulates the structured per-query/per-scan record. All
// methods are safe for concurrent use and on a nil receiver (the no-op sink).
type SearchStats struct {
	comparisons atomic.Int64 // MatchSeries-level comparisons
	rotations   atomic.Int64 // rotation-matrix rows those comparisons covered
	steps       atomic.Int64 // num_steps (real-value subtractions)

	fullDistEvals atomic.Int64 // exact kernel distances computed to completion
	earlyAbandons atomic.Int64 // exact kernel distances abandoned mid-way

	wedgeNodeVisits    atomic.Int64 // internal wedges whose children were explored
	wedgeLeafVisits    atomic.Int64 // individual rotations reached by H-Merge
	wedgePrunedMembers atomic.Int64 // rotations excluded by an internal-wedge LB
	wedgeLeafLBPrunes  atomic.Int64 // rotations excluded by a singleton-wedge LB
	wedgePruneByLevel  [MaxPruneLevels]atomic.Int64

	fftRejects         atomic.Int64 // comparisons rejected whole by the magnitude bound
	fftRejectedMembers atomic.Int64 // rotations those rejections covered
	fftFallbacks       atomic.Int64 // comparisons that fell through to early abandoning

	cancelledMembers atomic.Int64 // rotations left undisposed by a cancelled scan

	indexCandidates atomic.Int64 // index-level bound evaluations that survived
	indexFetches    atomic.Int64 // full-resolution fetches for exact verification
	diskReads       atomic.Int64 // record reads charged by the backing store

	kChanges atomic.Int64

	stepsHist Histogram // per-comparison num_steps distribution

	mu    sync.Mutex
	kTraj []KChange
}

// AddComparison records one rotation-invariant comparison covering members
// rotations.
func (s *SearchStats) AddComparison(members int64) {
	if s == nil {
		return
	}
	s.comparisons.Add(1)
	s.rotations.Add(members)
}

// AddSteps charges n num_steps.
func (s *SearchStats) AddSteps(n int64) {
	if s != nil {
		s.steps.Add(n)
	}
}

// ObserveComparisonSteps records one comparison's num_steps in the
// fixed-bucket histogram.
func (s *SearchStats) ObserveComparisonSteps(n int64) {
	if s != nil {
		s.stepsHist.Observe(n)
	}
}

// CountFullDist records one exact distance computed to completion.
func (s *SearchStats) CountFullDist() {
	if s != nil {
		s.fullDistEvals.Add(1)
	}
}

// CountAbandon records one exact distance abandoned early.
func (s *SearchStats) CountAbandon() {
	if s != nil {
		s.earlyAbandons.Add(1)
	}
}

// AddOutcomes batches per-rotation outcome counts — fullDist exact
// evaluations plus abandons early abandons — into two atomic adds, so the
// per-rotation hot loops stay free of shared-cacheline traffic.
func (s *SearchStats) AddOutcomes(fullDist, abandons int64) {
	if s == nil {
		return
	}
	s.fullDistEvals.Add(fullDist)
	s.earlyAbandons.Add(abandons)
}

// CountNodeVisit records one internal wedge whose children were explored.
func (s *SearchStats) CountNodeVisit() {
	if s != nil {
		s.wedgeNodeVisits.Add(1)
	}
}

// CountLeafVisit records one rotation reached individually by H-Merge.
func (s *SearchStats) CountLeafVisit() {
	if s != nil {
		s.wedgeLeafVisits.Add(1)
	}
}

// CountWedgePrune records an internal-wedge LB prune at the given dendrogram
// level (root = 0) that excluded members rotations at once.
func (s *SearchStats) CountWedgePrune(level int, members int64) {
	if s == nil {
		return
	}
	s.wedgePrunedMembers.Add(members)
	if level < 0 {
		level = 0
	}
	if level >= MaxPruneLevels {
		level = MaxPruneLevels - 1
	}
	s.wedgePruneByLevel[level].Add(1)
}

// CountLeafLBPrune records one rotation excluded by its singleton-wedge LB.
func (s *SearchStats) CountLeafLBPrune() {
	if s != nil {
		s.wedgeLeafLBPrunes.Add(1)
	}
}

// CountFFTReject records one comparison rejected whole by the
// Fourier-magnitude bound, covering members rotations.
func (s *SearchStats) CountFFTReject(members int64) {
	if s == nil {
		return
	}
	s.fftRejects.Add(1)
	s.fftRejectedMembers.Add(members)
}

// CountCancelled records members rotations left undisposed when a
// cancellation checkpoint aborted a comparison mid-walk, keeping the
// outcome buckets reconciled under cooperative cancellation.
func (s *SearchStats) CountCancelled(members int64) {
	if s != nil {
		s.cancelledMembers.Add(members)
	}
}

// CountFFTFallback records one comparison the magnitude bound could not
// reject.
func (s *SearchStats) CountFFTFallback() {
	if s != nil {
		s.fftFallbacks.Add(1)
	}
}

// CountIndexCandidate records one index candidate surviving its compressed
// bound.
func (s *SearchStats) CountIndexCandidate() {
	if s != nil {
		s.indexCandidates.Add(1)
	}
}

// CountIndexFetch records one full-resolution fetch for exact verification.
func (s *SearchStats) CountIndexFetch() {
	if s != nil {
		s.indexFetches.Add(1)
	}
}

// CountDiskRead records one record read charged by the backing store.
func (s *SearchStats) CountDiskRead() {
	if s != nil {
		s.diskReads.Add(1)
	}
}

// RecordKChange appends one dynamic-K adjustment to the trajectory, stamped
// with the current comparison count. The trajectory is capped; the change
// counter keeps counting past the cap.
func (s *SearchStats) RecordKChange(from, to int) {
	if s == nil {
		return
	}
	s.kChanges.Add(1)
	s.mu.Lock()
	if len(s.kTraj) < maxKTrajectory {
		s.kTraj = append(s.kTraj, KChange{Comparison: s.comparisons.Load(), From: from, To: to})
	}
	s.mu.Unlock()
}

// Steps reports the accumulated num_steps.
func (s *SearchStats) Steps() int64 {
	if s == nil {
		return 0
	}
	return s.steps.Load()
}

// Comparisons reports the accumulated comparison count.
func (s *SearchStats) Comparisons() int64 {
	if s == nil {
		return 0
	}
	return s.comparisons.Load()
}

// Reset zeroes every counter, the histogram and the trajectory.
func (s *SearchStats) Reset() {
	if s == nil {
		return
	}
	s.comparisons.Store(0)
	s.rotations.Store(0)
	s.steps.Store(0)
	s.fullDistEvals.Store(0)
	s.earlyAbandons.Store(0)
	s.wedgeNodeVisits.Store(0)
	s.wedgeLeafVisits.Store(0)
	s.wedgePrunedMembers.Store(0)
	s.wedgeLeafLBPrunes.Store(0)
	for i := range s.wedgePruneByLevel {
		s.wedgePruneByLevel[i].Store(0)
	}
	s.fftRejects.Store(0)
	s.fftRejectedMembers.Store(0)
	s.fftFallbacks.Store(0)
	s.cancelledMembers.Store(0)
	s.indexCandidates.Store(0)
	s.indexFetches.Store(0)
	s.diskReads.Store(0)
	s.kChanges.Store(0)
	s.stepsHist.Reset()
	s.mu.Lock()
	s.kTraj = nil
	s.mu.Unlock()
}

// Snapshot is a point-in-time copy of a SearchStats record, in plain values
// suitable for JSON export. Derived rates are included so dashboards need no
// arithmetic.
type Snapshot struct {
	Comparisons int64 `json:"comparisons"`
	Rotations   int64 `json:"rotations"`
	Steps       int64 `json:"steps"`

	FullDistEvals int64 `json:"full_dist_evals"`
	EarlyAbandons int64 `json:"early_abandons"`

	WedgeNodeVisits    int64   `json:"wedge_node_visits"`
	WedgeLeafVisits    int64   `json:"wedge_leaf_visits"`
	WedgePrunedMembers int64   `json:"wedge_pruned_members"`
	WedgeLeafLBPrunes  int64   `json:"wedge_leaf_lb_prunes"`
	WedgePrunesByLevel []int64 `json:"wedge_prunes_by_level,omitempty"`

	FFTRejects         int64 `json:"fft_rejects"`
	FFTRejectedMembers int64 `json:"fft_rejected_members"`
	FFTFallbacks       int64 `json:"fft_fallbacks"`

	CancelledMembers int64 `json:"cancelled_members,omitempty"`

	IndexCandidates int64 `json:"index_candidates"`
	IndexFetches    int64 `json:"index_fetches"`
	DiskReads       int64 `json:"disk_reads"`

	KChanges    int64     `json:"k_changes"`
	KTrajectory []KChange `json:"k_trajectory,omitempty"`

	// PruneRate is the fraction of rotations disposed of without a full
	// distance evaluation; StepsPerComparison the paper's per-comparison cost.
	PruneRate          float64 `json:"prune_rate"`
	StepsPerComparison float64 `json:"steps_per_comparison"`

	StepsHistogram []HistogramBucket `json:"steps_histogram,omitempty"`
	// StepsHistogramSum is the exact sum of all observed per-comparison
	// num_steps values — the Prometheus `_sum` of the histogram above, which
	// the bucket bounds alone cannot reconstruct.
	StepsHistogramSum int64 `json:"steps_histogram_sum,omitempty"`
}

// Snapshot returns a consistent-enough copy for reporting (individual fields
// are read atomically; the record may advance between field reads, which is
// fine for telemetry). A nil receiver yields a zero Snapshot.
func (s *SearchStats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	snap := Snapshot{
		Comparisons:        s.comparisons.Load(),
		Rotations:          s.rotations.Load(),
		Steps:              s.steps.Load(),
		FullDistEvals:      s.fullDistEvals.Load(),
		EarlyAbandons:      s.earlyAbandons.Load(),
		WedgeNodeVisits:    s.wedgeNodeVisits.Load(),
		WedgeLeafVisits:    s.wedgeLeafVisits.Load(),
		WedgePrunedMembers: s.wedgePrunedMembers.Load(),
		WedgeLeafLBPrunes:  s.wedgeLeafLBPrunes.Load(),
		FFTRejects:         s.fftRejects.Load(),
		FFTRejectedMembers: s.fftRejectedMembers.Load(),
		FFTFallbacks:       s.fftFallbacks.Load(),
		CancelledMembers:   s.cancelledMembers.Load(),
		IndexCandidates:    s.indexCandidates.Load(),
		IndexFetches:       s.indexFetches.Load(),
		DiskReads:          s.diskReads.Load(),
		KChanges:           s.kChanges.Load(),
	}
	maxLevel := -1
	for i := range s.wedgePruneByLevel {
		if s.wedgePruneByLevel[i].Load() != 0 {
			maxLevel = i
		}
	}
	if maxLevel >= 0 {
		snap.WedgePrunesByLevel = make([]int64, maxLevel+1)
		for i := range snap.WedgePrunesByLevel {
			snap.WedgePrunesByLevel[i] = s.wedgePruneByLevel[i].Load()
		}
	}
	s.mu.Lock()
	if len(s.kTraj) > 0 {
		snap.KTrajectory = append([]KChange(nil), s.kTraj...)
	}
	s.mu.Unlock()
	if snap.Rotations > 0 {
		snap.PruneRate = 1 - float64(snap.FullDistEvals)/float64(snap.Rotations)
	}
	if snap.Comparisons > 0 {
		snap.StepsPerComparison = float64(snap.Steps) / float64(snap.Comparisons)
	}
	snap.StepsHistogram = s.stepsHist.Buckets()
	snap.StepsHistogramSum = s.stepsHist.Sum()
	return snap
}

// Reconciles reports whether the outcome buckets account for every rotation
// covered — the invariant all four strategies maintain.
func (sn Snapshot) Reconciles() bool {
	return sn.Rotations == sn.FullDistEvals+sn.EarlyAbandons+
		sn.WedgePrunedMembers+sn.WedgeLeafLBPrunes+sn.FFTRejectedMembers+
		sn.CancelledMembers
}
