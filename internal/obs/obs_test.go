package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilSinkIsSafeAndFree(t *testing.T) {
	var st *SearchStats
	exercise := func() {
		st.AddComparison(8)
		st.AddSteps(100)
		st.ObserveComparisonSteps(100)
		st.CountFullDist()
		st.CountAbandon()
		st.CountNodeVisit()
		st.CountLeafVisit()
		st.CountWedgePrune(3, 4)
		st.CountLeafLBPrune()
		st.CountFFTReject(8)
		st.CountFFTFallback()
		st.CountIndexCandidate()
		st.CountIndexFetch()
		st.CountDiskRead()
		st.RecordKChange(4, 8)
		st.Reset()
	}
	exercise()
	if st.Steps() != 0 || st.Comparisons() != 0 {
		t.Fatal("nil sink reported nonzero totals")
	}
	if allocs := testing.AllocsPerRun(100, exercise); allocs != 0 {
		t.Fatalf("nil sink allocated %.1f times per run, want 0", allocs)
	}
	var h *Histogram
	if allocs := testing.AllocsPerRun(100, func() { h.Observe(42) }); allocs != 0 {
		t.Fatalf("nil histogram allocated %.1f times per run, want 0", allocs)
	}
	var c *Counter
	if allocs := testing.AllocsPerRun(100, func() { c.Add(1) }); allocs != 0 {
		t.Fatalf("nil counter allocated %.1f times per run, want 0", allocs)
	}
}

func TestSnapshotReconciles(t *testing.T) {
	var st SearchStats
	st.AddComparison(10) // 10 rotations to account for
	st.CountFullDist()
	st.CountFullDist()
	st.CountAbandon()
	st.CountWedgePrune(2, 4)
	st.CountLeafLBPrune()
	st.CountFFTReject(2)
	sn := st.Snapshot()
	if sn.Rotations != 10 {
		t.Fatalf("Rotations = %d, want 10", sn.Rotations)
	}
	if !sn.Reconciles() {
		t.Fatalf("snapshot does not reconcile: %+v", sn)
	}
	// Per-level buckets count prune events; member totals are aggregate only.
	if sn.WedgePrunesByLevel[2] != 1 {
		t.Fatalf("level-2 prunes = %v, want 1", sn.WedgePrunesByLevel)
	}
	if want := 1 - 2.0/10; sn.PruneRate != want {
		t.Fatalf("PruneRate = %v, want %v", sn.PruneRate, want)
	}
	st.Reset()
	if sn := st.Snapshot(); sn.Rotations != 0 || len(sn.WedgePrunesByLevel) != 0 {
		t.Fatalf("Reset left data behind: %+v", sn)
	}
}

func TestKTrajectoryBounded(t *testing.T) {
	var st SearchStats
	for i := 0; i < 2*maxKTrajectory; i++ {
		st.RecordKChange(i, i+1)
	}
	sn := st.Snapshot()
	if sn.KChanges != 2*maxKTrajectory {
		t.Fatalf("KChanges = %d, want %d", sn.KChanges, 2*maxKTrajectory)
	}
	if len(sn.KTrajectory) != maxKTrajectory {
		t.Fatalf("trajectory length = %d, want cap %d", len(sn.KTrajectory), maxKTrajectory)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		value  int64
		bucket int
	}{
		{0, 0}, {1, 0}, // bucket 0: v <= 1
		{2, 1},         // (1, 2]
		{3, 2}, {4, 2}, // (2, 4]
		{5, 3}, {8, 3}, // (4, 8]
		{9, 4},          // (8, 16]
		{1 << 39, 39},   // top regular bucket boundary
		{1<<39 + 1, 40}, // overflow
		{1 << 60, 40},   // overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.value); got != c.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.value, got, c.bucket)
		}
	}
	if BucketBound(0) != 1 || BucketBound(3) != 8 {
		t.Fatalf("BucketBound boundaries wrong: %d, %d", BucketBound(0), BucketBound(3))
	}
	if BucketBound(HistogramBuckets) != -1 {
		t.Fatal("overflow bucket should report bound -1")
	}

	var h Histogram
	for _, v := range []int64{1, 2, 3, 4, 5, 1 << 60} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	want := map[int64]int64{1: 1, 2: 1, 4: 2, 8: 1, -1: 1}
	got := map[int64]int64{}
	for _, b := range h.Buckets() {
		got[b.UpperBound] = b.Count
	}
	for ub, n := range want {
		if got[ub] != n {
			t.Fatalf("bucket le=%d count %d, want %d (all: %v)", ub, got[ub], n, got)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	if want := int64(8) * 1000 * 1001 / 2; h.Sum() != want {
		t.Fatalf("Sum = %d, want %d", h.Sum(), want)
	}
}

func TestSearchStatsConcurrent(t *testing.T) {
	var st SearchStats
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				st.AddComparison(4)
				st.CountFullDist()
				st.CountAbandon()
				st.CountWedgePrune(1, 2)
				st.ObserveComparisonSteps(int64(i + 1))
			}
		}()
	}
	wg.Wait()
	sn := st.Snapshot()
	if sn.Comparisons != 8000 || sn.Rotations != 32000 {
		t.Fatalf("comparisons=%d rotations=%d", sn.Comparisons, sn.Rotations)
	}
	if !sn.Reconciles() {
		t.Fatalf("concurrent updates broke reconciliation: %+v", sn)
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lbkeogh_test_total", "a counter")
	c.Add(7)
	h := r.Histogram("lbkeogh_test_steps", "a histogram")
	h.Observe(3)
	h.Observe(300)
	var st SearchStats
	st.AddComparison(2)
	st.CountFullDist()
	st.CountAbandon()
	st.CountWedgePrune(0, 0)
	r.SearchStats("lbkeogh_test_search", "a search record", &st)

	var sb strings.Builder
	if err := r.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lbkeogh_test_total counter\nlbkeogh_test_total 7\n",
		"# TYPE lbkeogh_test_steps histogram\n",
		`lbkeogh_test_steps_bucket{le="4"} 1`,
		`lbkeogh_test_steps_bucket{le="+Inf"} 2`,
		"lbkeogh_test_steps_sum 303",
		"lbkeogh_test_steps_count 2",
		"lbkeogh_test_search_comparisons 1",
		"lbkeogh_test_search_rotations 2",
		"lbkeogh_test_search_full_dist_evals 1",
		"lbkeogh_test_search_early_abandons 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n---\n%s", want, out)
		}
	}
	if names := r.sortedStatNames(); len(names) != 3 || names[0] != "lbkeogh_test_search" {
		t.Fatalf("sortedStatNames = %v", names)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	r.Counter("lbkeogh_test_total", "dup")
}

func TestFuncTracer(t *testing.T) {
	var visits, abandons, kchanges, fetches int
	tr := &FuncTracer{
		WedgeVisit: func(node, level int, lb float64, pruned bool) { visits++ },
		Abandon:    func(member int) { abandons++ },
		KChange:    func(oldK, newK int) { kchanges++ },
		Fetch:      func(id int) { fetches++ },
	}
	TraceWedgeVisit(tr, 1, 0, 0.5, true)
	TraceAbandon(tr, 3)
	TraceKChange(tr, 4, 8)
	TraceFetch(tr, 9)
	if visits != 1 || abandons != 1 || kchanges != 1 || fetches != 1 {
		t.Fatalf("events = %d %d %d %d", visits, abandons, kchanges, fetches)
	}
	// nil tracer and partially populated FuncTracer are both no-ops.
	TraceWedgeVisit(nil, 0, 0, 0, false)
	empty := &FuncTracer{}
	empty.OnWedgeVisit(0, 0, 0, false)
	empty.OnAbandon(0)
	empty.OnKChange(0, 0)
	empty.OnFetch(0)
}
