package obs

// Tracer receives fine-grained search events for debugging admissibility and
// pruning behavior. Implementations must be safe for concurrent calls when
// used with parallel scans. A nil Tracer is never invoked; callers guard
// every hook with the helpers below so the uninstrumented path pays one
// branch.
type Tracer interface {
	// OnWedgeVisit fires for every wedge whose lower bound was evaluated:
	// node is the dendrogram node id, level its depth from the root, lb the
	// (possibly partial) bound, and pruned whether the wedge — and every
	// rotation under it — was excluded by the bound.
	OnWedgeVisit(node, level int, lb float64, pruned bool)
	// OnAbandon fires when the exact distance to rotation member was
	// abandoned against the best-so-far.
	OnAbandon(member int)
	// OnKChange fires when the dynamic controller settles on a new wedge-set
	// size.
	OnKChange(oldK, newK int)
	// OnFetch fires when the index layer retrieves full-resolution object id
	// for exact verification.
	OnFetch(id int)
}

// FuncTracer adapts free functions to the Tracer interface; nil fields are
// skipped, so callers implement only the hooks they care about.
type FuncTracer struct {
	WedgeVisit func(node, level int, lb float64, pruned bool)
	Abandon    func(member int)
	KChange    func(oldK, newK int)
	Fetch      func(id int)
}

// OnWedgeVisit implements Tracer.
func (t FuncTracer) OnWedgeVisit(node, level int, lb float64, pruned bool) {
	if t.WedgeVisit != nil {
		t.WedgeVisit(node, level, lb, pruned)
	}
}

// OnAbandon implements Tracer.
func (t FuncTracer) OnAbandon(member int) {
	if t.Abandon != nil {
		t.Abandon(member)
	}
}

// OnKChange implements Tracer.
func (t FuncTracer) OnKChange(oldK, newK int) {
	if t.KChange != nil {
		t.KChange(oldK, newK)
	}
}

// OnFetch implements Tracer.
func (t FuncTracer) OnFetch(id int) {
	if t.Fetch != nil {
		t.Fetch(id)
	}
}

// TraceWedgeVisit invokes t.OnWedgeVisit when t is non-nil.
func TraceWedgeVisit(t Tracer, node, level int, lb float64, pruned bool) {
	if t != nil {
		t.OnWedgeVisit(node, level, lb, pruned)
	}
}

// TraceAbandon invokes t.OnAbandon when t is non-nil.
func TraceAbandon(t Tracer, member int) {
	if t != nil {
		t.OnAbandon(member)
	}
}

// TraceKChange invokes t.OnKChange when t is non-nil.
func TraceKChange(t Tracer, oldK, newK int) {
	if t != nil {
		t.OnKChange(oldK, newK)
	}
}

// TraceFetch invokes t.OnFetch when t is non-nil.
func TraceFetch(t Tracer, id int) {
	if t != nil {
		t.OnFetch(id)
	}
}
