package trace

import "lbkeogh/internal/obs"

// Stage identifies what a span measures. Stages are a closed enum so the
// per-stage latency histograms can live in a fixed array and the hot paths
// never format a string.
type Stage uint8

const (
	// StageSearch is the root span of one public search call (Search,
	// SearchTopK, SearchParallel, Distance, Match, or an index query).
	StageSearch Stage = iota
	// StageBuild is the root span of one query compilation (NewQuery).
	StageBuild
	// StageRotationMatrix covers expanding the rotation matrix and computing
	// the circulant distance profiles.
	StageRotationMatrix
	// StageWedgeBuild covers agglomerative clustering plus merging the
	// per-node envelopes of the wedge hierarchy.
	StageWedgeBuild
	// StageComparison covers one MatchSeries call: one database series
	// matched against every admitted rotation.
	StageComparison
	// StageEnvelope covers widened-envelope construction/lookup inside a
	// traversal (cache hits are near-zero-duration spans).
	StageEnvelope
	// StageHMerge covers the H-Merge traversal of one comparison.
	StageHMerge
	// StageKernel covers one exact kernel evaluation (full or abandoned).
	StageKernel
	// StageFFT covers the Fourier-magnitude screen of one comparison.
	StageFFT
	// StageVPProbe covers one VP-tree probe of an indexed Euclidean query.
	StageVPProbe
	// StageRTreeProbe covers one R-tree probe of an indexed DTW query.
	StageRTreeProbe
	// StageFetch covers one full-resolution record fetch for verification.
	StageFetch
	// StageDiskRead covers one physical record read in the disk store
	// (histogram-only; the store observes latency but records no spans).
	StageDiskRead
	// StageMonitorFilter covers one full-window filter pass of a stream
	// monitor (histogram-only).
	StageMonitorFilter

	// NumStages bounds the Stage enum; keep it last.
	NumStages
)

var stageNames = [NumStages]string{
	StageSearch:         "search",
	StageBuild:          "build",
	StageRotationMatrix: "rotation_matrix",
	StageWedgeBuild:     "wedge_build",
	StageComparison:     "comparison",
	StageEnvelope:       "envelope",
	StageHMerge:         "hmerge",
	StageKernel:         "kernel",
	StageFFT:            "fft_screen",
	StageVPProbe:        "vp_probe",
	StageRTreeProbe:     "rtree_probe",
	StageFetch:          "fetch",
	StageDiskRead:       "disk_read",
	StageMonitorFilter:  "monitor_filter",
}

// String returns the stable lowercase stage name used in exports, metrics
// and the dashboard.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageFromName returns the Stage with the given String(), or NumStages when
// no stage matches.
func StageFromName(name string) Stage {
	for s, n := range stageNames {
		if n == name {
			return Stage(s)
		}
	}
	return NumStages
}

// Span is one timed region of a trace. Start is nanoseconds since the
// trace's monotonic anchor; Dur its length in nanoseconds. Parent indexes
// the trace's span slice (-1 for roots). Ref carries a stage-specific id:
// the database index of a comparison, the record id of a fetch, the member
// id of a kernel evaluation, -1 when meaningless.
type Span struct {
	Parent int32      `json:"parent"`
	Stage  Stage      `json:"-"`
	Ref    int32      `json:"ref"`
	Start  int64      `json:"start_ns"`
	Dur    int64      `json:"dur_ns"`
	Attrs  obs.Counts `json:"attrs,omitempty"`
	// VisitsByLevel breaks an H-Merge span's internal-node visits down by
	// dendrogram depth (nil for every other stage).
	VisitsByLevel []int64 `json:"visits_by_level,omitempty"`
}

// End returns the span's end offset in nanoseconds.
func (s Span) End() int64 { return s.Start + s.Dur }

// contains reports whether s fully covers other's interval — the relation
// arena flushing uses to reconstruct nesting.
func (s Span) contains(other Span) bool {
	return s.Start <= other.Start && other.End() <= s.End()
}
