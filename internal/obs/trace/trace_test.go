package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"lbkeogh/internal/obs"
)

func TestRecorderNesting(t *testing.T) {
	r := NewRecorder("search", 16)
	root := r.Begin(StageSearch, -1)
	comp := r.Begin(StageComparison, 3)
	r.Emit(StageFFT, -1, r.Now(), 0)
	r.End(comp)
	comp2 := r.Begin(StageComparison, 4)
	r.EndAttrs(comp2, obs.Counts{Comparisons: 1})
	r.End(root)

	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[root].Parent != -1 {
		t.Errorf("root parent = %d, want -1", spans[root].Parent)
	}
	if spans[comp].Parent != int32(root) {
		t.Errorf("comparison parent = %d, want %d", spans[comp].Parent, root)
	}
	if spans[2].Stage != StageFFT || spans[2].Parent != int32(comp) {
		t.Errorf("emitted span = %+v, want fft under comparison %d", spans[2], comp)
	}
	if spans[comp2].Parent != int32(root) {
		t.Errorf("second comparison parent = %d, want %d (stack must have popped)", spans[comp2].Parent, root)
	}
	if spans[comp2].Attrs.Comparisons != 1 {
		t.Errorf("EndAttrs did not attach attributes: %+v", spans[comp2].Attrs)
	}
	if spans[comp2].Ref != 4 {
		t.Errorf("ref = %d, want 4", spans[comp2].Ref)
	}
}

func TestRecorderUnwindsMismatchedEnds(t *testing.T) {
	r := NewRecorder("x", 8)
	outer := r.Begin(StageSearch, -1)
	r.Begin(StageComparison, 0) // never explicitly ended
	r.End(outer)                // must unwind past the open comparison
	if next := r.Begin(StageComparison, 1); r.Spans()[next].Parent != -1 {
		t.Errorf("after unwinding, new span parent = %d, want -1", r.Spans()[next].Parent)
	}
}

func TestRecorderDropCounting(t *testing.T) {
	r := NewRecorder("x", 2)
	a := r.Begin(StageSearch, -1)
	b := r.Begin(StageComparison, 0)
	c := r.Begin(StageComparison, 1) // over capacity
	if c != -1 {
		t.Fatalf("saturated Begin = %d, want -1", c)
	}
	r.Emit(StageKernel, 0, 0, 1) // also dropped
	r.End(c)                     // no-op, must not panic
	r.End(b)
	r.End(a)
	if got := r.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	if len(r.Spans()) != 2 {
		t.Errorf("got %d spans, want 2", len(r.Spans()))
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	if id := r.Begin(StageSearch, -1); id != -1 {
		t.Fatalf("nil Begin = %d, want -1", id)
	}
	r.End(-1)
	r.EndAttrs(0, obs.Counts{})
	r.Emit(StageKernel, 0, 0, 1)
	r.FlushArena(nil, -1)
	if r.Now() != 0 || r.Dropped() != 0 || r.Spans() != nil || r.Label() != "" {
		t.Error("nil recorder accessors must return zero values")
	}
}

func TestArenaFlushReconstructsNesting(t *testing.T) {
	r := NewRecorder("search", 64)
	comp := r.Begin(StageComparison, 0)
	var ar Arena
	ar.Init(r)
	// Synthetic intervals: kernel ⊂ hmerge ⊂ envelope, emitted inner-first
	// (completion order), exactly as the search hot path does.
	ar.Emit(StageKernel, 7, 10, 5)
	ar.Emit(StageHMerge, -1, 5, 20)
	ar.Emit(StageEnvelope, -1, 0, 40)
	ar.CountVisit(0)
	ar.CountVisit(1)
	ar.CountVisit(1)
	r.FlushArena(&ar, comp)
	r.End(comp)

	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	kernel, hmerge, envelope := spans[1], spans[2], spans[3]
	if kernel.Stage != StageKernel || kernel.Parent != 2 {
		t.Errorf("kernel parent = %d, want 2 (the hmerge span)", kernel.Parent)
	}
	if hmerge.Stage != StageHMerge || hmerge.Parent != 3 {
		t.Errorf("hmerge parent = %d, want 3 (the envelope span)", hmerge.Parent)
	}
	if envelope.Stage != StageEnvelope || envelope.Parent != int32(comp) {
		t.Errorf("envelope parent = %d, want %d (the comparison)", envelope.Parent, comp)
	}
	if got := hmerge.VisitsByLevel; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("hmerge VisitsByLevel = %v, want [1 2]", got)
	}
	if kernel.VisitsByLevel != nil || envelope.VisitsByLevel != nil {
		t.Error("visit counts must attach to the hmerge span only")
	}
	if ar.n != 0 || ar.visited {
		t.Error("flush must reset the arena")
	}
}

func TestArenaBeginEndReservesSlot(t *testing.T) {
	r := NewRecorder("search", 64)
	var ar Arena
	ar.Init(r)
	slot := ar.Begin(StageEnvelope, -1)
	if slot != 0 {
		t.Fatalf("first Begin slot = %d, want 0", slot)
	}
	// Saturate the remaining capacity with kernels; the reserved slot must
	// survive and still close correctly.
	for i := 0; i < arenaCap+3; i++ {
		ar.Kernel(i, ar.Now())
	}
	ar.End(slot)
	if ar.spans[slot].Stage != StageEnvelope || ar.spans[slot].Dur <= 0 {
		t.Errorf("reserved slot not closed: %+v", ar.spans[slot])
	}
	if ar.dropped != 4 { // arenaCap-1 kernels fit after the reservation
		t.Errorf("dropped = %d, want 4", ar.dropped)
	}
	if ar.KernelEvals != int64(arenaCap)+3 {
		t.Errorf("KernelEvals = %d, want %d (aggregates continue past the cap)", ar.KernelEvals, arenaCap+3)
	}
	ar.End(-1) // no-op
}

func TestArenaDisarmed(t *testing.T) {
	var ar Arena // Init never called: disarmed
	if ar.Begin(StageEnvelope, -1) != -1 {
		t.Error("disarmed Begin must return -1")
	}
	ar.Emit(StageKernel, 0, 0, 1)
	ar.Kernel(0, 0)
	ar.CountVisit(1)
	ar.End(0)
	if ar.n != 0 || ar.KernelEvals != 0 || ar.visited {
		t.Errorf("disarmed arena recorded state: %+v", ar)
	}
	var nilArena *Arena
	nilArena.Init(NewRecorder("x", 4))
	if nilArena.Now() != 0 {
		t.Error("nil arena Now must be 0")
	}
}

func TestLogSlowCaptureBypassesSampling(t *testing.T) {
	// Negative sample rate: nothing sampled; 1ns threshold: everything slow.
	l := NewLog(Config{SampleRate: -1, SlowThreshold: 1})
	for i := 0; i < 5; i++ {
		rec := l.StartTrace("search")
		id := rec.Begin(StageSearch, -1)
		rec.End(id)
		if l.Finish(rec, obs.Counts{}) == 0 {
			t.Fatal("slow trace was not retained")
		}
	}
	if got := len(l.Slow()); got != 5 {
		t.Errorf("slow ring has %d traces, want 5", got)
	}
	if got := len(l.Recent()); got != 0 {
		t.Errorf("sampled ring has %d traces, want 0", got)
	}
	finished, sampled := l.Totals()
	if finished != 5 || sampled != 0 {
		t.Errorf("Totals = (%d, %d), want (5, 0)", finished, sampled)
	}
}

func TestLogRingEviction(t *testing.T) {
	l := NewLog(Config{Capacity: 4, SampleRate: 1, SlowThreshold: -1})
	for i := 0; i < 10; i++ {
		rec := l.StartTrace("search")
		rec.End(rec.Begin(StageSearch, -1))
		l.Finish(rec, obs.Counts{})
	}
	got := l.Recent()
	if len(got) != 4 {
		t.Fatalf("ring has %d traces, want 4", len(got))
	}
	for i, tr := range got {
		if want := int64(7 + i); tr.ID != want {
			t.Errorf("ring[%d].ID = %d, want %d (oldest first)", i, tr.ID, want)
		}
		if tr.Slow {
			t.Errorf("trace %d marked slow with slow capture disabled", tr.ID)
		}
	}
	if _, ok := l.Get(10); !ok {
		t.Error("Get must find a retained trace")
	}
	if _, ok := l.Get(1); ok {
		t.Error("Get must miss an evicted trace")
	}
}

func TestLogSamplingRate(t *testing.T) {
	l := NewLog(Config{Capacity: 2000, SampleRate: 0.25, SlowThreshold: -1, Seed: 42})
	const n = 2000
	for i := 0; i < n; i++ {
		rec := l.StartTrace("search")
		rec.End(rec.Begin(StageSearch, -1))
		l.Finish(rec, obs.Counts{})
	}
	_, sampled := l.Totals()
	// Binomial(2000, 0.25): mean 500, sd ~19. Accept ±6 sd.
	if sampled < 380 || sampled > 620 {
		t.Errorf("sampled %d of %d at rate 0.25, want ~500", sampled, n)
	}
}

func TestLogFeedsHistogramsForUnretainedTraces(t *testing.T) {
	l := NewLog(Config{SampleRate: -1, SlowThreshold: -1}) // retain nothing
	rec := l.StartTrace("search")
	rec.End(rec.Begin(StageSearch, -1))
	if id := l.Finish(rec, obs.Counts{}); id != 0 {
		t.Fatalf("Finish = %d, want 0 (not retained)", id)
	}
	if got := l.Latencies().Histogram(StageSearch).Count(); got != 1 {
		t.Errorf("search histogram count = %d, want 1 (histograms see every trace)", got)
	}
}

func TestLogObserveStageAndNil(t *testing.T) {
	l := NewLog(Config{})
	l.ObserveStage(StageDiskRead, 1234)
	if got := l.Latencies().Histogram(StageDiskRead).Count(); got != 1 {
		t.Errorf("disk_read count = %d, want 1", got)
	}
	var nilLog *Log
	if nilLog.StartTrace("x") != nil {
		t.Error("nil log must start nil recorders")
	}
	nilLog.ObserveStage(StageDiskRead, 1)
	nilLog.Finish(nil, obs.Counts{})
	if nilLog.Recent() != nil || nilLog.Slow() != nil || nilLog.Latencies() != nil {
		t.Error("nil log accessors must return nil")
	}
	if th := nilLog.SlowThreshold(); th != 0 {
		t.Errorf("nil SlowThreshold = %v, want 0", th)
	}
}

func TestStageLatenciesSnapshotAndQuantile(t *testing.T) {
	var lat StageLatencies
	for i := 0; i < 50; i++ {
		lat.Observe(StageKernel, 1)
	}
	for i := 0; i < 50; i++ {
		lat.Observe(StageKernel, 1000)
	}
	lat.Observe(StageHMerge, 7)
	snap := lat.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d stages, want 2", len(snap))
	}
	// Stage order: hmerge (7) precedes kernel (8)? No — snapshot walks the
	// enum, and StageHMerge < StageKernel.
	if snap[0].Stage != "hmerge" || snap[1].Stage != "kernel" {
		t.Fatalf("snapshot order = %s, %s", snap[0].Stage, snap[1].Stage)
	}
	k := snap[1]
	if k.Count != 100 || k.SumNS != 50*1+50*1000 {
		t.Errorf("kernel count/sum = %d/%d, want 100/%d", k.Count, k.SumNS, 50+50*1000)
	}
	if k.P50NS != 1 {
		t.Errorf("p50 = %d, want 1", k.P50NS)
	}
	if k.P90NS != 1024 || k.P99NS != 1024 {
		t.Errorf("p90/p99 = %d/%d, want 1024/1024 (bucket resolution)", k.P90NS, k.P99NS)
	}
	lat.Reset()
	if lat.Snapshot() != nil {
		t.Error("snapshot after Reset must be empty")
	}

	var overflow obs.Histogram
	overflow.Observe(1 << 62)
	if got := Quantile(&overflow, 0.5); got != -1 {
		t.Errorf("overflow quantile = %d, want -1", got)
	}
	var empty obs.Histogram
	if got := Quantile(&empty, 0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	var nilLat *StageLatencies
	nilLat.Observe(StageKernel, 1)
	if nilLat.Snapshot() != nil || nilLat.Histogram(StageKernel) != nil {
		t.Error("nil StageLatencies must be a no-op sink")
	}
}

func TestStageNames(t *testing.T) {
	for s := Stage(0); s < NumStages; s++ {
		name := s.String()
		if name == "" || name == "unknown" {
			t.Errorf("stage %d has no name", s)
		}
		if got := StageFromName(name); got != s {
			t.Errorf("StageFromName(%q) = %v, want %v", name, got, s)
		}
	}
	if NumStages.String() != "unknown" {
		t.Error("out-of-range stage must print unknown")
	}
	if StageFromName("nope") != NumStages {
		t.Error("unknown name must map to NumStages")
	}
}

func sampleTrace() Trace {
	return Trace{
		ID:    7,
		Label: "search",
		Wall:  time.Unix(0, 0),
		DurNS: 100_000,
		Slow:  true,
		Attrs: obs.Counts{Comparisons: 2, Rotations: 10, FullDistEvals: 10},
		Spans: []Span{
			{Parent: -1, Stage: StageComparison, Ref: 0, Start: 0, Dur: 50_000, Attrs: obs.Counts{Comparisons: 1}},
			{Parent: 0, Stage: StageHMerge, Ref: -1, Start: 1_000, Dur: 40_000, VisitsByLevel: []int64{1, 2}},
			{Parent: 1, Stage: StageKernel, Ref: 3, Start: 2_000, Dur: 10_000},
		},
	}
}

func TestWriteChrome(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	var f chromeTraceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 4 { // root + 3 spans
		t.Fatalf("got %d events, want 4", len(f.TraceEvents))
	}
	root := f.TraceEvents[0]
	if root.Name != "search" || root.Ph != "X" || root.Dur != 100 { // 100_000ns = 100µs
		t.Errorf("root event = %+v", root)
	}
	kernel := f.TraceEvents[3]
	if kernel.Name != "kernel" || kernel.Ts != 2 || kernel.Dur != 10 {
		t.Errorf("kernel event = %+v", kernel)
	}
	if kernel.Args["ref"] == nil {
		t.Error("kernel event must carry its ref arg")
	}
	if f.TraceEvents[1].Args["counts"] == nil {
		t.Error("comparison event must carry its counts arg")
	}
	if f.TraceEvents[2].Args["visits_by_level"] == nil {
		t.Error("hmerge event must carry visits_by_level")
	}
}

func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", len(lines)+1, err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 4 { // header + 3 spans
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if lines[0]["spans"] != float64(3) || lines[0]["slow"] != true {
		t.Errorf("header = %v", lines[0])
	}
	if lines[2]["stage"] != "hmerge" || lines[2]["parent"] != float64(0) {
		t.Errorf("second span line = %v", lines[2])
	}
}

func TestWriteChromeAll(t *testing.T) {
	a, b := sampleTrace(), sampleTrace()
	b.ID = 8
	var buf bytes.Buffer
	if err := WriteChromeAll(&buf, []Trace{a, b}); err != nil {
		t.Fatal(err)
	}
	var f chromeTraceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8", len(f.TraceEvents))
	}
	if !strings.HasPrefix(f.TraceEvents[0].Name, "search#") {
		t.Errorf("multi-trace root name = %q, want a #id suffix", f.TraceEvents[0].Name)
	}
	tids := map[int64]bool{}
	for _, e := range f.TraceEvents {
		tids[e.Tid] = true
	}
	if len(tids) != 2 {
		t.Errorf("got %d distinct tids, want 2 (one track per trace)", len(tids))
	}
}
