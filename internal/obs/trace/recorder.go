package trace

import (
	"time"

	"lbkeogh/internal/obs"
)

// DefaultSpanCap bounds the spans of one trace unless the Log overrides it.
// Beyond the cap spans are dropped (and counted), never reallocated — the
// recorder does all its allocation up front.
const DefaultSpanCap = 512

// Recorder accumulates the spans of one trace. It is single-goroutine by
// design — a Query already is, and parallel scans record only their root
// span — and a nil *Recorder is a valid no-op sink everywhere: every method
// is nil-guarded so untraced hot paths pay one predictable branch, matching
// the *obs.SearchStats and *stats.Tally conventions.
//
// Spans are preallocated at construction; Begin/End push and pop an explicit
// open-span stack so nesting falls out of call order. Completed spans whose
// parent is still open index it via the stack.
type Recorder struct {
	anchor  time.Time // monotonic anchor; all offsets are time.Since(anchor)
	label   string
	spans   []Span
	stack   []int32 // indices of open spans
	dropped int64
}

// SpanID refers to an open span within its recorder. The zero value is not
// valid; use the return of Begin. A negative SpanID is the no-op reference
// returned by a nil or saturated recorder.
type SpanID int32

// NewRecorder returns a recorder with capacity for spanCap spans, anchored
// at time.Now (spanCap <= 0 selects DefaultSpanCap). Logs normally construct
// recorders via StartTrace; NewRecorder exists for tests and for tracing
// outside any log.
func NewRecorder(label string, spanCap int) *Recorder {
	if spanCap <= 0 {
		spanCap = DefaultSpanCap
	}
	return &Recorder{
		anchor: time.Now(),
		label:  label,
		spans:  make([]Span, 0, spanCap),
		stack:  make([]int32, 0, 8),
	}
}

// Label returns the trace label given at construction.
func (r *Recorder) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// Now returns nanoseconds since the trace anchor (0 on a nil recorder).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.anchor))
}

// Dropped reports how many spans were discarded because the buffer was full.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Begin opens a span of the given stage, nested under the innermost open
// span. It returns a no-op SpanID on a nil or saturated recorder.
func (r *Recorder) Begin(stage Stage, ref int) SpanID {
	if r == nil {
		return -1
	}
	if len(r.spans) == cap(r.spans) {
		r.dropped++
		return -1
	}
	parent := int32(-1)
	if n := len(r.stack); n > 0 {
		parent = r.stack[n-1]
	}
	id := int32(len(r.spans))
	r.spans = append(r.spans, Span{
		Parent: parent,
		Stage:  stage,
		Ref:    int32(ref),
		Start:  r.Now(),
	})
	r.stack = append(r.stack, id)
	return SpanID(id)
}

// End closes the span opened by Begin. Ending a no-op SpanID is a no-op.
func (r *Recorder) End(id SpanID) {
	r.EndAttrs(id, obs.Counts{})
}

// EndAttrs is End with counter-delta attributes attached to the span.
func (r *Recorder) EndAttrs(id SpanID, attrs obs.Counts) {
	if r == nil || id < 0 {
		return
	}
	sp := &r.spans[id]
	sp.Dur = r.Now() - sp.Start
	sp.Attrs = attrs
	// Pop the open stack down to (and including) this span; mismatched End
	// order unwinds rather than corrupting parentage.
	for n := len(r.stack); n > 0; n-- {
		top := r.stack[n-1]
		r.stack = r.stack[:n-1]
		if top == int32(id) {
			break
		}
	}
}

// Emit records an already-timed span (start and dur in anchor nanoseconds)
// as a child of the innermost open span.
func (r *Recorder) Emit(stage Stage, ref int, start, dur int64) {
	if r == nil {
		return
	}
	if len(r.spans) == cap(r.spans) {
		r.dropped++
		return
	}
	parent := int32(-1)
	if n := len(r.stack); n > 0 {
		parent = r.stack[n-1]
	}
	r.spans = append(r.spans, Span{Parent: parent, Stage: stage, Ref: int32(ref), Start: start, Dur: dur})
}

// Spans returns the recorded spans (shared slice; callers must not mutate).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// FlushArena copies the arena's completed spans into the recorder as
// descendants of the given span, reconstructing nesting by interval
// containment (an arena records a flat span list to stay allocation-free in
// the hot path). The arena's per-level visit counts are attached to its
// H-Merge span, if any. The arena is reset for reuse.
func (r *Recorder) FlushArena(a *Arena, under SpanID) {
	if r == nil || a == nil || a.n == 0 {
		if a != nil {
			a.reset()
		}
		return
	}
	r.dropped += a.dropped
	// Arena spans are completed in End order, so a span's enclosing spans
	// complete after it. Walk in arena order; for each span the parent is
	// the latest already-flushed arena span that contains it — but since
	// containers flush later, scan the remaining (unflushed) spans instead:
	// the tightest container wins. n is small (<= arenaCap), O(n²) is fine.
	base := int32(under)
	var idx [arenaCap]int32
	// First pass: append spans, remembering their recorder indices.
	for i := 0; i < a.n; i++ {
		if len(r.spans) == cap(r.spans) {
			r.dropped++
			idx[i] = -1
			continue
		}
		sp := a.spans[i]
		sp.Parent = base
		if sp.Stage == StageHMerge {
			sp.VisitsByLevel = a.visitsByLevel()
		}
		idx[i] = int32(len(r.spans))
		r.spans = append(r.spans, sp)
	}
	// Second pass: tighten parentage by containment among the arena spans.
	for i := 0; i < a.n; i++ {
		if idx[i] < 0 {
			continue
		}
		bestDur := int64(-1)
		for j := 0; j < a.n; j++ {
			if i == j || idx[j] < 0 {
				continue
			}
			if !a.spans[j].contains(a.spans[i]) {
				continue
			}
			// Identical intervals would parent each other; break the tie
			// towards the earlier span so nesting stays acyclic.
			if a.spans[j].Start == a.spans[i].Start && a.spans[j].Dur == a.spans[i].Dur && j > i {
				continue
			}
			if bestDur < 0 || a.spans[j].Dur < bestDur {
				bestDur = a.spans[j].Dur
				r.spans[idx[i]].Parent = idx[j]
			}
		}
	}
	a.reset()
}
