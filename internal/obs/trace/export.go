package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"lbkeogh/internal/obs"
)

// chromeEvent is one Chrome trace-event "complete" (ph "X") record.
// Timestamps and durations are microseconds, as the format requires; span
// nesting is implied by interval containment within one pid/tid, which is
// exactly how the recorder's parentage was derived, so Perfetto and
// chrome://tracing render the same tree the dashboard does.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the JSON-object form of the trace-event format.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// spanArgs converts a span's metadata to trace-event args (nil when empty).
func spanArgs(sp Span) map[string]any {
	args := map[string]any{}
	if sp.Ref >= 0 {
		args["ref"] = sp.Ref
	}
	if !sp.Attrs.IsZero() {
		args["counts"] = sp.Attrs
	}
	if len(sp.VisitsByLevel) > 0 {
		args["visits_by_level"] = sp.VisitsByLevel
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// WriteChrome renders the trace in Chrome trace-event JSON — loadable by
// Perfetto (ui.perfetto.dev) and chrome://tracing.
func WriteChrome(w io.Writer, tr Trace) error {
	events := make([]chromeEvent, 0, len(tr.Spans)+1)
	rootArgs := map[string]any{"trace_id": tr.ID, "counts": tr.Attrs}
	if tr.Dropped > 0 {
		rootArgs["dropped_spans"] = tr.Dropped
	}
	events = append(events, chromeEvent{
		Name: tr.Label, Ph: "X", Ts: 0, Dur: float64(tr.DurNS) / 1e3,
		Pid: 1, Tid: tr.ID, Args: rootArgs,
	})
	for _, sp := range tr.Spans {
		events = append(events, chromeEvent{
			Name: sp.Stage.String(),
			Ph:   "X",
			Ts:   float64(sp.Start) / 1e3,
			Dur:  float64(sp.Dur) / 1e3,
			Pid:  1,
			Tid:  tr.ID,
			Args: spanArgs(sp),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTraceFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// jsonlSpan is one span line of the JSONL export: flat, self-describing,
// one JSON object per line, suitable for jq/duckdb post-processing.
type jsonlSpan struct {
	TraceID int64      `json:"trace_id"`
	Label   string     `json:"label"`
	Span    int        `json:"span"`
	Parent  int32      `json:"parent"`
	Stage   string     `json:"stage"`
	Ref     int32      `json:"ref"`
	StartNS int64      `json:"start_ns"`
	DurNS   int64      `json:"dur_ns"`
	Attrs   obs.Counts `json:"attrs,omitempty"`
	Visits  []int64    `json:"visits_by_level,omitempty"`
}

// WriteJSONL renders every span of the trace as one JSON object per line,
// preceded by a header line describing the trace itself.
func WriteJSONL(w io.Writer, tr Trace) error {
	enc := json.NewEncoder(w)
	header := struct {
		TraceID int64      `json:"trace_id"`
		Label   string     `json:"label"`
		DurNS   int64      `json:"dur_ns"`
		Slow    bool       `json:"slow"`
		Spans   int        `json:"spans"`
		Dropped int64      `json:"dropped,omitempty"`
		Attrs   obs.Counts `json:"attrs"`
	}{tr.ID, tr.Label, tr.DurNS, tr.Slow, len(tr.Spans), tr.Dropped, tr.Attrs}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for i, sp := range tr.Spans {
		if err := enc.Encode(jsonlSpan{
			TraceID: tr.ID, Label: tr.Label, Span: i, Parent: sp.Parent,
			Stage: sp.Stage.String(), Ref: sp.Ref, StartNS: sp.Start, DurNS: sp.Dur,
			Attrs: sp.Attrs, Visits: sp.VisitsByLevel,
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeAll renders several traces into one trace-event file, one tid
// per trace so they stack as separate tracks.
func WriteChromeAll(w io.Writer, traces []Trace) error {
	var events []chromeEvent
	for _, tr := range traces {
		rootArgs := map[string]any{"trace_id": tr.ID, "counts": tr.Attrs}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%s#%d", tr.Label, tr.ID), Ph: "X",
			Ts: 0, Dur: float64(tr.DurNS) / 1e3, Pid: 1, Tid: tr.ID, Args: rootArgs,
		})
		for _, sp := range tr.Spans {
			events = append(events, chromeEvent{
				Name: sp.Stage.String(), Ph: "X",
				Ts: float64(sp.Start) / 1e3, Dur: float64(sp.Dur) / 1e3,
				Pid: 1, Tid: tr.ID, Args: spanArgs(sp),
			})
		}
	}
	return json.NewEncoder(w).Encode(chromeTraceFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}
