// Package trace is the query-lifecycle span layer on top of internal/obs:
// where the obs counters say *what* a search did (the paper's num_steps
// accounting), trace says *when* and *how long* — which lower bound the
// wall-clock actually went to, per query, per stage. That is the
// observability Lemire's two-pass LB_Keogh work implies you need: which
// bound dominates runtime shifts with data and band radius, and only a
// per-stage timeline verifies it on a live workload.
//
// # Model
//
// A Recorder accumulates the Spans of one trace against a monotonic anchor;
// it is single-goroutine (a Query already is) and a nil *Recorder is a
// valid no-op sink costing one branch per call, mirroring the nil
// *obs.SearchStats contract. Hot paths never touch the Recorder directly:
// they write into a goroutine-confined Arena — the span analogue of
// stats.Tally — which the owner flushes into the Recorder once per
// comparison. Span nesting is reconstructed at flush time by interval
// containment, so the hot loop stays free of parent bookkeeping.
//
// Spans carry obs.Counts deltas as attributes, so a comparison span's
// attrs satisfy the same reconciliation identity as the query's SearchStats
// (Rotations = FullDistEvals + EarlyAbandons + WedgePrunedMembers +
// WedgeLeafLBPrunes + FFTRejectedMembers), and summing the comparison
// spans of a trace reproduces the query's record.
//
// # Sampling and slow-query capture
//
// Recording and retention are separate decisions. When a Log is attached,
// every query records spans (the recording cost is the point of opting in);
// retention is decided at Finish time, when the duration is known:
//
//   - a trace whose duration is >= Config.SlowThreshold is ALWAYS retained
//     in the slow ring (capacity Config.SlowCapacity, oldest evicted first);
//   - independently, the trace is retained in the sampled ring (capacity
//     Config.Capacity) with probability Config.SampleRate, decided by a
//     seeded splitmix64 so runs are reproducible.
//
// Deciding at completion rather than at start is what makes slow-query
// capture reliable: a start-time sampling decision would drop exactly the
// outlier you wanted to keep. Every finished trace — retained or not —
// feeds the per-stage latency histograms, so histograms and Prometheus
// export see the full population, not the sample.
//
// # Export
//
// WriteChrome emits the Chrome trace-event format (load the file at
// ui.perfetto.dev or chrome://tracing); WriteJSONL emits one self-describing
// JSON object per span for jq/duckdb-style analysis. The public package
// mounts both, plus a live waterfall, under /debug/lbkeogh.
package trace
