package trace

import (
	"sync"
	"time"

	"lbkeogh/internal/obs"
)

// Defaults for Config fields left zero.
const (
	DefaultCapacity      = 64
	DefaultSlowCapacity  = 32
	DefaultSampleRate    = 0.25
	DefaultSlowThreshold = 50 * time.Millisecond
)

// Config tunes a Log. The zero value selects every default.
type Config struct {
	// Capacity is the sampled-trace ring size (<= 0: DefaultCapacity).
	Capacity int
	// SlowCapacity is the slow-trace ring size (<= 0: DefaultSlowCapacity).
	SlowCapacity int
	// SampleRate is the probability a completed trace is retained in the
	// ring (0: DefaultSampleRate; negative: keep nothing but slow traces;
	// >= 1: keep everything).
	SampleRate float64
	// SlowThreshold is the duration at or above which a trace is always
	// captured, bypassing sampling (0: DefaultSlowThreshold; negative:
	// disable slow capture).
	SlowThreshold time.Duration
	// SpanCap bounds the spans per trace (<= 0: DefaultSpanCap).
	SpanCap int
	// Seed seeds the sampling RNG (0 selects a fixed default, so runs are
	// reproducible unless the caller opts into a varying seed).
	Seed uint64
}

// Trace is one completed, retained query trace.
type Trace struct {
	ID    int64     `json:"id"`
	Label string    `json:"label"`
	Wall  time.Time `json:"wall"` // wall-clock start, for display only
	DurNS int64     `json:"dur_ns"`
	Slow  bool      `json:"slow"`
	// Attrs are the whole-trace counter deltas (the root span's attributes).
	Attrs   obs.Counts `json:"attrs"`
	Spans   []Span     `json:"spans"`
	Dropped int64      `json:"dropped,omitempty"`
}

// Log owns the retention policy over completed traces: a bounded ring of
// probabilistically sampled traces, a separate bounded ring of slow traces
// (always captured once their duration reaches the threshold), and the
// always-on per-stage latency histograms, which observe every span of every
// finished trace whether or not the trace itself is retained.
//
// StartTrace/Finish are safe for concurrent use across queries; one
// Recorder remains single-goroutine. A nil *Log starts nil recorders, so
// "tracing off" needs no branching at call sites.
type Log struct {
	mu      sync.Mutex
	cfg     Config
	ring    []Trace // sampled traces, newest overwrite oldest
	ringPos int
	slow    []Trace // slow traces, ditto
	slowPos int
	nextID  int64
	total   int64 // traces finished
	kept    int64 // traces retained in the sampled ring
	rng     uint64

	lat StageLatencies
}

// NewLog returns a Log with the given configuration.
func NewLog(cfg Config) *Log {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.SlowCapacity <= 0 {
		cfg.SlowCapacity = DefaultSlowCapacity
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = DefaultSampleRate
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.SpanCap <= 0 {
		cfg.SpanCap = DefaultSpanCap
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Log{cfg: cfg, rng: seed}
}

// Latencies exposes the per-stage latency histograms (nil-safe).
func (l *Log) Latencies() *StageLatencies {
	if l == nil {
		return nil
	}
	return &l.lat
}

// ObserveStage feeds one duration straight into the stage histograms — the
// path for histogram-only stages (disk reads, stream filter windows) that
// record no spans.
func (l *Log) ObserveStage(stage Stage, ns int64) {
	if l == nil {
		return
	}
	l.lat.Observe(stage, ns)
}

// StartTrace returns a fresh recorder for one query. A nil Log returns a
// nil Recorder — the no-op path.
func (l *Log) StartTrace(label string) *Recorder {
	if l == nil {
		return nil
	}
	return NewRecorder(label, l.cfg.SpanCap)
}

// splitmix64 advances the sampling RNG (Steele et al.; good enough for
// retention sampling and allocation-free).
func (l *Log) splitmix64() uint64 {
	l.rng += 0x9e3779b97f4a7c15
	z := l.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Finish completes the recorder's trace: every span's duration feeds the
// stage histograms, then the trace is retained in the slow ring (duration
// >= threshold) and/or the sampled ring (probability SampleRate). attrs are
// the whole-trace counter deltas. Finishing a nil recorder is a no-op.
// Returns the trace ID when the trace was retained anywhere, 0 otherwise.
func (l *Log) Finish(r *Recorder, attrs obs.Counts) int64 {
	if l == nil || r == nil {
		return 0
	}
	dur := r.Now()
	for _, sp := range r.spans {
		l.lat.Observe(sp.Stage, sp.Dur)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	isSlow := l.cfg.SlowThreshold > 0 && dur >= int64(l.cfg.SlowThreshold)
	sampled := l.cfg.SampleRate >= 1 ||
		(l.cfg.SampleRate > 0 && float64(l.splitmix64()>>11)/(1<<53) < l.cfg.SampleRate)
	if !isSlow && !sampled {
		return 0
	}
	l.nextID++
	tr := Trace{
		ID:      l.nextID,
		Label:   r.label,
		Wall:    r.anchor,
		DurNS:   dur,
		Slow:    isSlow,
		Attrs:   attrs,
		Spans:   r.spans,
		Dropped: r.dropped,
	}
	if sampled {
		l.kept++
		if len(l.ring) < l.cfg.Capacity {
			l.ring = append(l.ring, tr)
		} else {
			l.ring[l.ringPos] = tr
			l.ringPos = (l.ringPos + 1) % l.cfg.Capacity
		}
	}
	if isSlow {
		if len(l.slow) < l.cfg.SlowCapacity {
			l.slow = append(l.slow, tr)
		} else {
			l.slow[l.slowPos] = tr
			l.slowPos = (l.slowPos + 1) % l.cfg.SlowCapacity
		}
	}
	return tr.ID
}

// ringInOrder copies a ring oldest-first.
func ringInOrder(ring []Trace, pos, capacity int) []Trace {
	out := make([]Trace, 0, len(ring))
	if len(ring) < capacity {
		return append(out, ring...)
	}
	out = append(out, ring[pos:]...)
	return append(out, ring[:pos]...)
}

// Recent returns the retained sampled traces, oldest first.
func (l *Log) Recent() []Trace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return ringInOrder(l.ring, l.ringPos, l.cfg.Capacity)
}

// Slow returns the retained slow traces, oldest first.
func (l *Log) Slow() []Trace {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return ringInOrder(l.slow, l.slowPos, l.cfg.SlowCapacity)
}

// Get returns the retained trace with the given ID (sampled or slow).
func (l *Log) Get(id int64) (Trace, bool) {
	if l == nil {
		return Trace{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.ring {
		if l.ring[i].ID == id {
			return l.ring[i], true
		}
	}
	for i := range l.slow {
		if l.slow[i].ID == id {
			return l.slow[i], true
		}
	}
	return Trace{}, false
}

// Totals reports how many traces finished and how many the sampled ring
// retained since the log was created.
func (l *Log) Totals() (finished, sampled int64) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total, l.kept
}

// SlowThreshold reports the effective slow-capture threshold.
func (l *Log) SlowThreshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.cfg.SlowThreshold
}
