package trace

import "lbkeogh/internal/obs"

// StageLatencies is a fixed set of per-stage latency histograms over the
// shared power-of-two buckets of internal/obs (nanosecond values: the 40
// finite buckets span 1ns..~9min). Observe is lock-free and concurrent-safe;
// a nil *StageLatencies is a no-op sink.
type StageLatencies struct {
	hist [NumStages]obs.Histogram
}

// Observe records one duration (in nanoseconds) for the given stage.
func (l *StageLatencies) Observe(stage Stage, ns int64) {
	if l == nil || stage >= NumStages {
		return
	}
	if ns < 0 {
		ns = 0
	}
	l.hist[stage].Observe(ns)
}

// Histogram exposes one stage's histogram (nil receiver yields nil).
func (l *StageLatencies) Histogram(stage Stage) *obs.Histogram {
	if l == nil || stage >= NumStages {
		return nil
	}
	return &l.hist[stage]
}

// Reset zeroes every stage histogram.
func (l *StageLatencies) Reset() {
	if l == nil {
		return
	}
	for i := range l.hist {
		l.hist[i].Reset()
	}
}

// StageLatency is one stage's latency summary: exact count and sum, the
// non-empty buckets, and bucket-resolution quantiles (each quantile reports
// the upper bound of the bucket it falls in, -1 for the overflow bucket).
type StageLatency struct {
	Stage   string                `json:"stage"`
	Count   int64                 `json:"count"`
	SumNS   int64                 `json:"sum_ns"`
	Buckets []obs.HistogramBucket `json:"buckets,omitempty"`
	P50NS   int64                 `json:"p50_ns"`
	P90NS   int64                 `json:"p90_ns"`
	P99NS   int64                 `json:"p99_ns"`
}

// Snapshot summarizes every stage with at least one observation, in stage
// order.
func (l *StageLatencies) Snapshot() []StageLatency {
	if l == nil {
		return nil
	}
	var out []StageLatency
	for s := Stage(0); s < NumStages; s++ {
		h := &l.hist[s]
		if h.Count() == 0 {
			continue
		}
		out = append(out, StageLatency{
			Stage:   s.String(),
			Count:   h.Count(),
			SumNS:   h.Sum(),
			Buckets: h.Buckets(),
			P50NS:   Quantile(h, 0.50),
			P90NS:   Quantile(h, 0.90),
			P99NS:   Quantile(h, 0.99),
		})
	}
	return out
}

// Quantile returns the q-quantile of a power-of-two histogram at bucket
// resolution: the inclusive upper bound of the bucket where the cumulative
// count first reaches q·count, or -1 when it lands in the overflow bucket.
// q outside (0, 1] is clamped; an empty histogram reports 0.
func Quantile(h *obs.Histogram, q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.Count
		if cum >= target {
			return b.UpperBound
		}
	}
	return -1
}
