package trace

import (
	"time"

	"lbkeogh/internal/obs"
)

// arenaCap bounds the spans one arena (one comparison) can hold. A wedge
// search emits one envelope span, one H-Merge span and one kernel span per
// surviving leaf, so the cap keeps the waterfall informative for typical
// comparisons while bounding the worst case; overflow is counted, and the
// kernel aggregate fields keep counting past it.
const arenaCap = 24

// Arena is the goroutine-confined scratch buffer for hot-path span
// recording, mirroring the stats.Tally pattern: the search hot loops write
// plain (non-atomic) spans into a stack-owned arena, and the owner flushes
// it into the trace Recorder once per comparison. An Arena must never be
// shared across goroutines or parked in a struct field; a nil *Arena — the
// untraced path — costs one predictable branch per call site.
type Arena struct {
	anchor  time.Time
	spans   [arenaCap]Span
	n       int
	dropped int64
	visits  [obs.MaxPruneLevels]int64
	visited bool
	// KernelNS / KernelEvals aggregate exact-kernel time and count across
	// every evaluation, including those past the span cap.
	KernelNS    int64
	KernelEvals int64
}

// Init arms the arena against the recorder's anchor. A nil recorder leaves
// the arena disarmed: every method returns immediately.
func (a *Arena) Init(r *Recorder) {
	if a == nil || r == nil {
		return
	}
	a.anchor = r.anchor
}

// armed reports whether Init saw a live recorder.
func (a *Arena) armed() bool { return a != nil && !a.anchor.IsZero() }

// Now returns nanoseconds since the trace anchor (0 when disarmed).
func (a *Arena) Now() int64 {
	if !a.armed() {
		return 0
	}
	return int64(time.Since(a.anchor))
}

// Emit records a completed span. Saturation drops the span and counts it.
func (a *Arena) Emit(stage Stage, ref int, start, dur int64) {
	if !a.armed() {
		return
	}
	if a.n == arenaCap {
		a.dropped++
		return
	}
	a.spans[a.n] = Span{Parent: -1, Stage: stage, Ref: int32(ref), Start: start, Dur: dur}
	a.n++
}

// Begin reserves a span slot opening now, so enclosing stages claim their
// slot before inner kernel spans can saturate the arena. Returns -1 when
// disarmed or full (End ignores it).
func (a *Arena) Begin(stage Stage, ref int) int {
	if !a.armed() {
		return -1
	}
	if a.n == arenaCap {
		a.dropped++
		return -1
	}
	a.spans[a.n] = Span{Parent: -1, Stage: stage, Ref: int32(ref), Start: a.Now()}
	a.n++
	return a.n - 1
}

// End closes a slot reserved by Begin.
func (a *Arena) End(slot int) {
	if slot < 0 || !a.armed() {
		return
	}
	a.spans[slot].Dur = a.Now() - a.spans[slot].Start
}

// Kernel records one exact kernel evaluation started at t0 (a prior Now
// call) against member ref, feeding both the span buffer and the aggregate
// counters.
func (a *Arena) Kernel(ref int, t0 int64) {
	if !a.armed() {
		return
	}
	dur := a.Now() - t0
	a.KernelNS += dur
	a.KernelEvals++
	if a.n == arenaCap {
		a.dropped++
		return
	}
	a.spans[a.n] = Span{Parent: -1, Stage: StageKernel, Ref: int32(ref), Start: t0, Dur: dur}
	a.n++
}

// CountVisit charges one H-Merge internal-node visit at the given
// dendrogram level; the counts surface as the H-Merge span's VisitsByLevel.
func (a *Arena) CountVisit(level int) {
	if !a.armed() {
		return
	}
	if level < 0 {
		level = 0
	}
	if level >= obs.MaxPruneLevels {
		level = obs.MaxPruneLevels - 1
	}
	a.visits[level]++
	a.visited = true
}

// visitsByLevel returns the non-empty prefix of the visit counts (nil when
// nothing was recorded). Called at flush time, outside the hot path.
func (a *Arena) visitsByLevel() []int64 {
	if !a.visited {
		return nil
	}
	max := -1
	for i := range a.visits {
		if a.visits[i] != 0 {
			max = i
		}
	}
	out := make([]int64, max+1)
	copy(out, a.visits[:max+1])
	return out
}

// reset clears the arena for the next comparison (anchor retained).
func (a *Arena) reset() {
	a.n = 0
	a.dropped = 0
	a.KernelNS = 0
	a.KernelEvals = 0
	if a.visited {
		a.visits = [obs.MaxPruneLevels]int64{}
		a.visited = false
	}
}
