package ops

import (
	"sync"
	"time"

	"lbkeogh/internal/obs"
)

// WindowConfig shapes a rolling aggregate: Slots ring slots of SlotDur each,
// so the window covers Slots*SlotDur trailing wall time. The zero value
// selects 60 slots of one second — a one-minute window that rolls smoothly.
type WindowConfig struct {
	Slots   int
	SlotDur time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

func (c WindowConfig) withDefaults() WindowConfig {
	if c.Slots <= 0 {
		c.Slots = 60
	}
	if c.SlotDur <= 0 {
		c.SlotDur = time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Window reports the wall time the configured window covers.
func (c WindowConfig) Window() time.Duration {
	c = c.withDefaults()
	return time.Duration(c.Slots) * c.SlotDur
}

// Error classes a request outcome falls into. "ok" is not an error; the
// server-attributable classes (rejected, timeout, server) count against the
// error budget, client mistakes do not.
const (
	classOK       = iota // 2xx/3xx
	classClient          // 4xx except 429
	classRejected        // 429: shed by admission control
	classTimeout         // 504: deadline expired
	classServer          // other 5xx
	numClasses
)

// classNames indexes the class constants for label emission.
var classNames = [numClasses]string{"ok", "client", "rejected", "timeout", "server"}

// ErrorClass buckets an HTTP status code into its error-class label.
func ErrorClass(status int) string { return classNames[classIndex(status)] }

// ClassNames returns the error-class label vocabulary in emission order, so
// layers that pre-create one counter per class (the serving telemetry, the
// load generator's cross-validation) share this exact vocabulary.
func ClassNames() []string { return append([]string(nil), classNames[:]...) }

func classIndex(status int) int {
	switch {
	case status == 429:
		return classRejected
	case status == 504:
		return classTimeout
	case status >= 500:
		return classServer
	case status >= 400:
		return classClient
	default:
		return classOK
	}
}

// Exemplar is the most recent traced observation that landed in a latency
// bucket: enough to jump from a histogram tail straight to the captured
// trace (OpenMetrics exemplar semantics).
type Exemplar struct {
	TraceID int64
	DurNS   int64
	Wall    time.Time
}

// redSlot is one time slice of a RED window. epoch is the absolute slot
// number the slice currently holds; a stale slice is reset in place when its
// index comes around again.
type redSlot struct {
	epoch    int64
	requests int64
	classes  [numClasses]int64
	durSumNS int64
	buckets  [obs.HistogramBuckets + 1]int64
}

// RED is a rolling-window request aggregate: rate, error-class counts, and a
// power-of-two duration histogram with bucket-resolution quantiles, over the
// trailing WindowConfig.Window(). Observations are O(1) under one mutex —
// this is per-request accounting, never per-comparison. A nil *RED is a
// no-op sink.
type RED struct {
	mu        sync.Mutex
	cfg       WindowConfig
	slots     []redSlot
	exemplars [obs.HistogramBuckets + 1]Exemplar
}

// NewRED returns a rolling request window.
func NewRED(cfg WindowConfig) *RED {
	cfg = cfg.withDefaults()
	r := &RED{cfg: cfg, slots: make([]redSlot, cfg.Slots)}
	for i := range r.slots {
		r.slots[i].epoch = -1
	}
	return r
}

// slot rotates the ring to the current wall time and returns the live slot.
// Callers hold r.mu.
func (r *RED) slot(now time.Time) *redSlot {
	epoch := now.UnixNano() / int64(r.cfg.SlotDur)
	s := &r.slots[int(epoch%int64(len(r.slots)))]
	if s.epoch != epoch {
		*s = redSlot{epoch: epoch}
	}
	return s
}

// Observe records one finished request. traceID links the observation to a
// retained trace (0 when the request was untraced or sampled away); a
// non-zero ID replaces the bucket's exemplar.
func (r *RED) Observe(status int, dur time.Duration, traceID int64) {
	if r == nil {
		return
	}
	ns := dur.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b := obs.BucketIndex(ns)
	r.mu.Lock()
	now := r.cfg.now()
	s := r.slot(now)
	s.requests++
	s.classes[classIndex(status)]++
	s.durSumNS += ns
	s.buckets[b]++
	if traceID != 0 {
		r.exemplars[b] = Exemplar{TraceID: traceID, DurNS: ns, Wall: now}
	}
	r.mu.Unlock()
}

// BucketExemplar pairs a histogram bucket (by upper bound, -1 for overflow)
// with its exemplar.
type BucketExemplar struct {
	UpperBoundNS int64
	Exemplar
}

// REDSnapshot is one merged view of a RED window.
type REDSnapshot struct {
	// Window is the wall time covered.
	Window time.Duration
	// Requests is the total observed inside the window; Classes splits it by
	// error class ("ok", "client", "rejected", "timeout", "server").
	Requests int64
	Classes  map[string]int64
	// RatePerSec is Requests spread over the window.
	RatePerSec float64
	// DurSumNS sums every observed duration; Buckets holds the
	// non-cumulative per-bucket counts indexed like obs.Histogram (bound
	// obs.BucketBound(i), overflow last).
	DurSumNS int64
	Buckets  [obs.HistogramBuckets + 1]int64
	// Bucket-resolution quantiles: the bucket upper bound (ns) the quantile
	// falls in, -1 for the overflow bucket, 0 when the window is empty.
	P50NS, P90NS, P99NS int64
	// Exemplars carries the still-fresh bucket exemplars (observed within
	// the window), ascending by bound.
	Exemplars []BucketExemplar
}

// Snapshot merges the live slots into one window view.
func (r *RED) Snapshot() REDSnapshot {
	out := REDSnapshot{Classes: map[string]int64{}}
	if r == nil {
		return out
	}
	r.mu.Lock()
	now := r.cfg.now()
	epoch := now.UnixNano() / int64(r.cfg.SlotDur)
	oldest := epoch - int64(len(r.slots)) + 1
	out.Window = r.cfg.Window()
	for i := range r.slots {
		s := &r.slots[i]
		if s.epoch < oldest {
			continue
		}
		out.Requests += s.requests
		out.DurSumNS += s.durSumNS
		for c := 0; c < numClasses; c++ {
			if s.classes[c] != 0 {
				out.Classes[classNames[c]] += s.classes[c]
			}
		}
		for b := range s.buckets {
			out.Buckets[b] += s.buckets[b]
		}
	}
	for b, ex := range r.exemplars {
		if ex.TraceID != 0 && now.Sub(ex.Wall) <= out.Window {
			out.Exemplars = append(out.Exemplars, BucketExemplar{UpperBoundNS: obs.BucketBound(b), Exemplar: ex})
		}
	}
	r.mu.Unlock()
	if out.Window > 0 {
		out.RatePerSec = float64(out.Requests) / out.Window.Seconds()
	}
	out.P50NS = bucketQuantile(out.Buckets, out.Requests, 0.50)
	out.P90NS = bucketQuantile(out.Buckets, out.Requests, 0.90)
	out.P99NS = bucketQuantile(out.Buckets, out.Requests, 0.99)
	return out
}

// bucketQuantile returns the upper bound (ns) of the bucket the q-quantile
// falls in; -1 means overflow, 0 means no observations.
func bucketQuantile(buckets [obs.HistogramBuckets + 1]int64, total int64, q float64) int64 {
	if total <= 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range buckets {
		cum += buckets[i]
		if cum >= rank {
			return obs.BucketBound(i)
		}
	}
	return -1
}
