package ops

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
)

// The runtime/metrics samples exported as lbkeogh_runtime_* families. Kept
// to the handful an operator actually watches during an incident: memory
// pressure, GC stalls, goroutine growth, and scheduler queuing.
var runtimeSamples = []struct {
	metric string // runtime/metrics name
	name   string // exported family
	kind   string // gauge | counter | histogram
	help   string
}{
	{"/sched/goroutines:goroutines", "lbkeogh_runtime_goroutines", "gauge",
		"Live goroutines."},
	{"/memory/classes/heap/objects:bytes", "lbkeogh_runtime_heap_bytes", "gauge",
		"Bytes of live heap objects."},
	{"/memory/classes/total:bytes", "lbkeogh_runtime_total_bytes", "gauge",
		"All memory mapped by the Go runtime."},
	{"/gc/cycles/total:gc-cycles", "lbkeogh_runtime_gc_cycles_total", "counter",
		"Completed GC cycles."},
	{"/gc/pauses:seconds", "lbkeogh_runtime_gc_pause_seconds", "histogram",
		"Stop-the-world GC pause latencies."},
	{"/sched/latencies:seconds", "lbkeogh_runtime_sched_latency_seconds", "histogram",
		"Time goroutines spent runnable before running."},
}

// WriteRuntimeMetrics reads the curated runtime/metrics samples and writes
// them as lbkeogh_runtime_* families in text exposition format. Histograms
// carry _sum NaN: runtime/metrics float histograms have no exact sum, and
// NaN (the Prometheus client convention for these) keeps the family
// well-formed without inventing one. One metrics.Read per call — scrape
// cost, not request cost.
func WriteRuntimeMetrics(w io.Writer) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.metric
	}
	metrics.Read(samples)
	for i, rs := range runtimeSamples {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			v := samples[i].Value.Uint64()
			if rs.kind == "counter" {
				WriteCounter(w, rs.name, rs.help, int64(v))
			} else {
				WriteGaugeInt(w, rs.name, rs.help, int64(v))
			}
		case metrics.KindFloat64:
			WriteGaugeFloat(w, rs.name, rs.help, samples[i].Value.Float64())
		case metrics.KindFloat64Histogram:
			writeRuntimeHistogram(w, rs.name, rs.help, samples[i].Value.Float64Histogram())
		default:
			// Unsupported on this runtime version; skip the family entirely
			// rather than emit a header with no samples.
		}
	}
}

// writeRuntimeHistogram converts a runtime/metrics Float64Histogram to
// cumulative le-buckets, compacted to the boundaries where the cumulative
// count changes (plus +Inf) so idle histograms stay small.
func writeRuntimeHistogram(w io.Writer, name, help string, h *metrics.Float64Histogram) {
	WriteFamily(w, name, "histogram", help)
	// Buckets[i] .. Buckets[i+1] bound Counts[i]; the first boundary may be
	// -Inf and the last +Inf.
	var cum uint64
	prev := uint64(0)
	for i, c := range h.Counts {
		cum += c
		upper := h.Buckets[i+1]
		if math.IsInf(upper, 1) {
			break // folded into the +Inf bucket below
		}
		if cum == prev && i > 0 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, FormatFloat(upper), cum)
		prev = cum
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	fmt.Fprintf(w, "%s_sum %s\n", name, FormatFloat(math.NaN()))
	fmt.Fprintf(w, "%s_count %d\n", name, total)
}
