// Package ops is the operational-telemetry layer over the obs/trace stack:
// what a production deployment of the search service needs beyond per-query
// stats and spans. It provides structured logging (log/slog with
// request-scoped loggers carrying request and trace IDs), rolling-window RED
// aggregates with OpenMetrics-style exemplars, pruning-power windows, SLO
// burn-rate computation, Go runtime telemetry (lbkeogh_runtime_* families
// from runtime/metrics), and a continuous-profiling ring of periodic
// CPU/heap pprof captures.
//
// Nothing in this package sits on the search hot path: windows are observed
// once per request, runtime metrics are read once per scrape, and profiling
// runs on its own goroutine. The library's nil-sink discipline is preserved —
// a nil *RED, *PruneWindow, or *Profiler is a no-op, and the nil-recorder
// perf guard (LBKEOGH_PERF_GUARD) is unaffected by this layer being compiled
// in.
package ops
