package ops

import (
	"time"

	"lbkeogh/internal/obs"
)

// SLO holds the service objectives the rolling windows are judged against.
// The zero value selects the defaults below.
type SLO struct {
	// LatencyObjective is the duration a request should finish within
	// (default 250ms); LatencyTarget the fraction of requests that must
	// (default 0.99).
	LatencyObjective time.Duration
	LatencyTarget    float64

	// ErrorTarget is the fraction of requests that must not fail with a
	// server-attributable class — rejected, timeout, or server (default
	// 0.999). Client errors never count against the budget.
	ErrorTarget float64
}

// WithDefaults fills zero fields with the default objectives.
func (s SLO) WithDefaults() SLO {
	if s.LatencyObjective <= 0 {
		s.LatencyObjective = 250 * time.Millisecond
	}
	if s.LatencyTarget <= 0 || s.LatencyTarget >= 1 {
		s.LatencyTarget = 0.99
	}
	if s.ErrorTarget <= 0 || s.ErrorTarget >= 1 {
		s.ErrorTarget = 0.999
	}
	return s
}

// Burn is the burn-rate view of one window against an SLO: BadFraction is
// the observed violating fraction, BurnRate that fraction divided by the
// budget (1 - target). A burn rate of 1.0 consumes the error budget exactly
// as fast as the SLO allows; sustained rates above ~10 page.
type Burn struct {
	LatencyBadFraction float64
	LatencyBurnRate    float64
	ErrorBadFraction   float64
	ErrorBurnRate      float64
}

// Burn computes the burn rates of one RED snapshot. The latency cut is made
// at bucket resolution: a request counts as within-objective when its whole
// bucket fits under the objective, so the reported bad fraction is an upper
// bound (conservative by at most one power-of-two bucket).
func (s SLO) Burn(snap REDSnapshot) Burn {
	s = s.WithDefaults()
	var b Burn
	total := snap.Requests
	if total <= 0 {
		return b
	}
	objNS := s.LatencyObjective.Nanoseconds()
	var good int64
	for i, c := range snap.Buckets {
		if bound := obs.BucketBound(i); bound >= 0 && bound <= objNS {
			good += c
		}
	}
	b.LatencyBadFraction = 1 - float64(good)/float64(total)
	b.LatencyBurnRate = b.LatencyBadFraction / (1 - s.LatencyTarget)

	bad := snap.Classes["rejected"] + snap.Classes["timeout"] + snap.Classes["server"]
	b.ErrorBadFraction = float64(bad) / float64(total)
	b.ErrorBurnRate = b.ErrorBadFraction / (1 - s.ErrorTarget)
	return b
}
