package ops

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"fmt"
	"html/template"
	"log/slog"
	"net/http"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ProfilerConfig sizes a Profiler. Zero fields select the defaults noted.
type ProfilerConfig struct {
	// Interval is the wall time between capture rounds (default 60s). Each
	// round takes one CPU profile of CPUDuration (default 2s, clamped to
	// half the interval) and one heap profile.
	Interval    time.Duration
	CPUDuration time.Duration
	// MaxCaptures bounds the retention ring (default 16 captures; older
	// ones are dropped).
	MaxCaptures int
	// Logger receives capture failures (e.g. a CPU profile already running
	// via /debug/pprof/profile); nil discards them.
	Logger *slog.Logger
}

func (c ProfilerConfig) withDefaults() ProfilerConfig {
	if c.Interval <= 0 {
		c.Interval = 60 * time.Second
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = 2 * time.Second
	}
	if c.CPUDuration > c.Interval/2 {
		c.CPUDuration = c.Interval / 2
	}
	if c.MaxCaptures <= 0 {
		c.MaxCaptures = 16
	}
	c.Logger = Or(c.Logger)
	return c
}

// Capture is one retained pprof profile.
type Capture struct {
	ID    int64     `json:"id"`
	Kind  string    `json:"kind"` // "cpu" or "heap"
	Taken time.Time `json:"taken"`
	Size  int       `json:"size"`
	data  []byte
}

// Profiler keeps a bounded ring of periodic CPU and heap pprof captures so
// the profile covering an incident is already on the server when the
// dashboard points at it. Start launches the capture loop; Stop ends it. A
// nil *Profiler is a no-op and its Handler serves an explanatory 404.
type Profiler struct {
	cfg ProfilerConfig

	mu       sync.Mutex
	captures []Capture
	nextID   int64
	stop     chan struct{}
}

// NewProfiler returns an idle profiler; nothing is captured until Start.
func NewProfiler(cfg ProfilerConfig) *Profiler {
	return &Profiler{cfg: cfg.withDefaults()}
}

// Start takes an immediate heap capture (so the ring is never empty while
// running) and launches the periodic capture loop. Start on a started or nil
// profiler is a no-op.
func (p *Profiler) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.stop != nil {
		p.mu.Unlock()
		return
	}
	p.stop = make(chan struct{})
	stop := p.stop
	p.mu.Unlock()
	p.captureHeap()
	go p.loop(stop)
}

// Stop ends the capture loop; retained captures stay browsable.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.stop != nil {
		close(p.stop)
		p.stop = nil
	}
	p.mu.Unlock()
}

func (p *Profiler) loop(stop chan struct{}) {
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.captureCPU(stop)
			p.captureHeap()
		}
	}
}

func (p *Profiler) captureHeap() {
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		p.cfg.Logger.Warn("heap profile failed", "error", err)
		return
	}
	p.retain("heap", buf.Bytes())
}

func (p *Profiler) captureCPU(stop chan struct{}) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Most likely a concurrent /debug/pprof/profile; skip this round.
		p.cfg.Logger.Warn("cpu profile skipped", "error", err)
		return
	}
	select {
	case <-stop:
	case <-time.After(p.cfg.CPUDuration):
	}
	pprof.StopCPUProfile()
	p.retain("cpu", buf.Bytes())
}

func (p *Profiler) retain(kind string, data []byte) {
	p.mu.Lock()
	p.nextID++
	p.captures = append(p.captures, Capture{
		ID: p.nextID, Kind: kind, Taken: time.Now(), Size: len(data), data: data,
	})
	if over := len(p.captures) - p.cfg.MaxCaptures; over > 0 {
		p.captures = append(p.captures[:0:0], p.captures[over:]...)
	}
	p.mu.Unlock()
}

// Captures lists the retained captures, oldest first (profile bytes are
// served through the Handler, not copied here).
func (p *Profiler) Captures() []Capture {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Capture, len(p.captures))
	copy(out, p.captures)
	for i := range out {
		out[i].data = nil
	}
	return out
}

func (p *Profiler) capture(id int64) (Capture, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.captures {
		if c.ID == id {
			return c, true
		}
	}
	return Capture{}, false
}

// Handler serves the capture ring: an HTML listing by default, one raw
// profile with ?id=N, and a tar.gz of everything with ?bundle=1.
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p == nil {
			http.Error(w, "continuous profiling is not enabled", http.StatusNotFound)
			return
		}
		switch {
		case r.URL.Query().Get("id") != "":
			p.serveOne(w, r)
		case r.URL.Query().Get("bundle") != "":
			p.serveBundle(w)
		default:
			p.serveList(w)
		}
	})
}

func (p *Profiler) serveOne(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad capture id", http.StatusBadRequest)
		return
	}
	c, ok := p.capture(id)
	if !ok {
		http.Error(w, "capture not retained (the ring is bounded)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", captureName(c)))
	w.Write(c.data) //nolint:errcheck // nothing left to do on a broken client connection
}

func (p *Profiler) serveBundle(w http.ResponseWriter) {
	p.mu.Lock()
	caps := make([]Capture, len(p.captures))
	copy(caps, p.captures)
	p.mu.Unlock()
	sort.Slice(caps, func(i, j int) bool { return caps[i].ID < caps[j].ID })
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", `attachment; filename="profiles.tar.gz"`)
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	for _, c := range caps {
		hdr := &tar.Header{
			Name:    captureName(c),
			Mode:    0o644,
			Size:    int64(len(c.data)),
			ModTime: c.Taken,
		}
		if tw.WriteHeader(hdr) != nil {
			break
		}
		if _, err := tw.Write(c.data); err != nil {
			break
		}
	}
	tw.Close() //nolint:errcheck // broken client connection
	gz.Close() //nolint:errcheck // broken client connection
}

func captureName(c Capture) string {
	return fmt.Sprintf("%s-%s-%d.pprof", c.Taken.UTC().Format("20060102T150405Z"), c.Kind, c.ID)
}

func (p *Profiler) serveList(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	data := struct {
		Captures []Capture
		Interval time.Duration
		Keep     int
	}{p.Captures(), p.cfg.Interval, p.cfg.MaxCaptures}
	// Newest first reads better in a live ring.
	for i, j := 0, len(data.Captures)-1; i < j; i, j = i+1, j-1 {
		data.Captures[i], data.Captures[j] = data.Captures[j], data.Captures[i]
	}
	if err := profileListTemplate.Execute(w, data); err != nil {
		fmt.Fprintf(w, "<!-- render error: %v -->", err)
	}
}

var profileListTemplate = template.Must(template.New("profiles").Parse(`<!DOCTYPE html>
<html><head><title>lbkeogh profiles</title><style>
body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5em; color: #222; }
table { border-collapse: collapse; } th, td { border: 1px solid #ccc; padding: 2px 8px; }
th { background: #f2f2f2; }
</style></head><body>
<h1>continuous profiling ring</h1>
<p>capture interval {{.Interval}}, keeping the last {{.Keep}} captures &middot;
<a href="?bundle=1">download all as tar.gz</a></p>
<table>
<tr><th>id</th><th>kind</th><th>taken</th><th>bytes</th><th></th></tr>
{{range .Captures}}
<tr><td>{{.ID}}</td><td>{{.Kind}}</td><td>{{.Taken.Format "2006-01-02 15:04:05"}}</td>
<td>{{.Size}}</td><td><a href="?id={{.ID}}">download</a></td></tr>
{{else}}
<tr><td colspan="5">no captures yet</td></tr>
{{end}}
</table>
</body></html>
`))
