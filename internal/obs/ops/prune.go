package ops

import (
	"sync"
	"time"

	"lbkeogh/internal/obs"
)

// pruneSlot is one time slice of a pruning-power window.
type pruneSlot struct {
	epoch  int64
	counts obs.Counts
	levels [obs.MaxPruneLevels]int64
}

// PruneWindow is a rolling window over search-internals deltas: what
// fraction of rotations the wedge hierarchy pruned (and at which levels),
// the FFT screen's reject rate, and how often the dynamic-K heuristic moved —
// the production view of the paper's pruning-power tables. One Observe per
// finished search, never per comparison. A nil *PruneWindow is a no-op sink.
type PruneWindow struct {
	mu    sync.Mutex
	cfg   WindowConfig
	slots []pruneSlot
}

// NewPruneWindow returns a rolling pruning-power window.
func NewPruneWindow(cfg WindowConfig) *PruneWindow {
	cfg = cfg.withDefaults()
	p := &PruneWindow{cfg: cfg, slots: make([]pruneSlot, cfg.Slots)}
	for i := range p.slots {
		p.slots[i].epoch = -1
	}
	return p
}

// Observe folds one search's counter delta (and its per-level wedge prunes)
// into the current slot.
func (p *PruneWindow) Observe(delta obs.Counts, prunesByLevel []int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	now := p.cfg.now()
	epoch := now.UnixNano() / int64(p.cfg.SlotDur)
	s := &p.slots[int(epoch%int64(len(p.slots)))]
	if s.epoch != epoch {
		*s = pruneSlot{epoch: epoch}
	}
	s.counts = s.counts.Add(delta)
	for i, v := range prunesByLevel {
		if i >= len(s.levels) {
			break
		}
		s.levels[i] += v
	}
	p.mu.Unlock()
}

// PruneSnapshot is one merged view of a pruning-power window.
type PruneSnapshot struct {
	// Window is the wall time covered; Counts the summed deltas inside it.
	Window time.Duration
	Counts obs.Counts
	// PruneRate is the fraction of covered rotations dismissed without a
	// full distance evaluation; FFTRejectRate the fraction rejected by the
	// FFT magnitude screen alone. Both are 0 on an empty window.
	PruneRate     float64
	FFTRejectRate float64
	// LevelFraction[i] is the fraction of covered rotations pruned at wedge
	// dendrogram depth i (trimmed to the deepest non-zero level).
	LevelFraction []float64
	// KChanges counts dynamic-K adjustments inside the window — drift here
	// means the workload is pushing the probe heuristic around.
	KChanges int64
}

// Snapshot merges the live slots into one window view.
func (p *PruneWindow) Snapshot() PruneSnapshot {
	var out PruneSnapshot
	if p == nil {
		return out
	}
	var levels [obs.MaxPruneLevels]int64
	p.mu.Lock()
	epoch := p.cfg.now().UnixNano() / int64(p.cfg.SlotDur)
	oldest := epoch - int64(len(p.slots)) + 1
	out.Window = p.cfg.Window()
	for i := range p.slots {
		s := &p.slots[i]
		if s.epoch < oldest {
			continue
		}
		out.Counts = out.Counts.Add(s.counts)
		for l := range levels {
			levels[l] += s.levels[l]
		}
	}
	p.mu.Unlock()
	out.KChanges = out.Counts.KChanges
	if rot := out.Counts.Rotations; rot > 0 {
		out.PruneRate = 1 - float64(out.Counts.FullDistEvals)/float64(rot)
		out.FFTRejectRate = float64(out.Counts.FFTRejectedMembers) / float64(rot)
		deepest := -1
		for l, v := range levels {
			if v != 0 {
				deepest = l
			}
		}
		if deepest >= 0 {
			out.LevelFraction = make([]float64, deepest+1)
			for l := 0; l <= deepest; l++ {
				out.LevelFraction[l] = float64(levels[l]) / float64(rot)
			}
		}
	}
	return out
}
