package ops

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// NewLogger builds a process logger writing to w. Format is "json" (the
// production default: one object per line, machine-parseable) or "text"
// (logfmt-style, for interactive runs); level is "debug", "info", "warn", or
// "error". Unknown values fall back to json/info rather than failing — a
// mistyped flag must not take the server down.
func NewLogger(w io.Writer, format, level string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: ParseLevel(level)}
	var h slog.Handler
	if strings.EqualFold(format, "text") {
		h = slog.NewTextHandler(w, opts)
	} else {
		h = slog.NewJSONHandler(w, opts)
	}
	return slog.New(h)
}

// ParseLevel maps a level name to its slog.Level, defaulting to Info.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// discardHandler drops every record. slog has no built-in discard handler at
// this language version, and a JSON handler on io.Discard still pays for
// formatting; this one declines at the Enabled check.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Discard returns a logger that drops everything: the nil-sink of the
// logging layer. Safe to share.
func Discard() *slog.Logger { return discardLogger }

var discardLogger = slog.New(discardHandler{})

// Or returns l, or the discard logger when l is nil, so callers can hold an
// optional logger without nil checks at every call site.
func Or(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Discard()
	}
	return l
}

type loggerKey struct{}

// WithLogger returns a context carrying the request-scoped logger. Handlers
// install a logger annotated with request_id (and later trace_id) so every
// layer below logs with the same correlation fields.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// FromContext returns the request-scoped logger, or the discard logger when
// none is installed — never nil.
func FromContext(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok && l != nil {
		return l
	}
	return Discard()
}

// IDSource mints process-unique request IDs: a fixed prefix derived from the
// process identity (so IDs from different processes don't collide in shared
// log storage) plus an atomic sequence number. Safe for concurrent use.
type IDSource struct {
	prefix string
	seq    atomic.Int64
}

// NewIDSource returns an ID source with a fresh process-derived prefix.
func NewIDSource() *IDSource {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d", os.Getpid(), time.Now().UnixNano())
	return &IDSource{prefix: fmt.Sprintf("%08x", uint32(h.Sum64()))}
}

// Next returns the next request ID, e.g. "f2a81c9d-000042".
func (s *IDSource) Next() string {
	return fmt.Sprintf("%s-%06d", s.prefix, s.seq.Add(1))
}
