package ops

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lbkeogh/internal/obs"
)

// fakeClock drives a WindowConfig deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testWindow(slots int, slotDur time.Duration) (*fakeClock, WindowConfig) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	return clk, WindowConfig{Slots: slots, SlotDur: slotDur, now: clk.now}
}

func TestREDWindowRollsObservationsOut(t *testing.T) {
	clk, cfg := testWindow(4, time.Second)
	r := NewRED(cfg)
	r.Observe(200, 10*time.Millisecond, 0)
	r.Observe(504, 20*time.Millisecond, 0)
	snap := r.Snapshot()
	if snap.Requests != 2 || snap.Classes["ok"] != 1 || snap.Classes["timeout"] != 1 {
		t.Fatalf("fresh window: %+v", snap)
	}
	if snap.Window != 4*time.Second {
		t.Fatalf("window = %v, want 4s", snap.Window)
	}
	if want := 2.0 / 4.0; snap.RatePerSec != want {
		t.Errorf("rate = %v, want %v", snap.RatePerSec, want)
	}
	// Advance past the window: everything rolls out.
	clk.advance(5 * time.Second)
	if snap := r.Snapshot(); snap.Requests != 0 {
		t.Fatalf("after expiry: %+v", snap)
	}
	// New observations land in a recycled slot, untainted by the old epoch.
	r.Observe(200, time.Millisecond, 0)
	if snap := r.Snapshot(); snap.Requests != 1 || snap.Classes["ok"] != 1 {
		t.Fatalf("after recycle: %+v", snap)
	}
}

func TestREDQuantilesAreBucketResolution(t *testing.T) {
	_, cfg := testWindow(8, time.Second)
	r := NewRED(cfg)
	// 90 fast requests, 10 slow: p50/p90 in the fast bucket, p99 in the slow.
	for i := 0; i < 90; i++ {
		r.Observe(200, 1000*time.Nanosecond, 0) // bucket bound 1024
	}
	for i := 0; i < 10; i++ {
		r.Observe(200, time.Duration(1<<20-1)*time.Nanosecond, 0) // ~1ms, bound 2^20
	}
	snap := r.Snapshot()
	if snap.P50NS != 1024 || snap.P90NS != 1024 {
		t.Errorf("p50/p90 = %d/%d, want 1024/1024", snap.P50NS, snap.P90NS)
	}
	if snap.P99NS != 1<<20 {
		t.Errorf("p99 = %d, want %d", snap.P99NS, int64(1)<<20)
	}
}

func TestErrorClass(t *testing.T) {
	for status, want := range map[int]string{
		200: "ok", 302: "ok", 400: "client", 404: "client",
		429: "rejected", 504: "timeout", 500: "server", 503: "server",
	} {
		if got := ErrorClass(status); got != want {
			t.Errorf("ErrorClass(%d) = %q, want %q", status, got, want)
		}
	}
}

func TestExemplarTracksMostRecentTraceAndExpires(t *testing.T) {
	clk, cfg := testWindow(4, time.Second)
	r := NewRED(cfg)
	r.Observe(200, 1000*time.Nanosecond, 7)
	r.Observe(200, 1001*time.Nanosecond, 9) // same bucket: replaces trace 7
	snap := r.Snapshot()
	if len(snap.Exemplars) != 1 {
		t.Fatalf("exemplars = %+v, want exactly one", snap.Exemplars)
	}
	ex := snap.Exemplars[0]
	if ex.TraceID != 9 || ex.UpperBoundNS != 1024 {
		t.Fatalf("exemplar = %+v, want trace 9 on bound 1024", ex)
	}
	// Untraced observations never clobber an exemplar...
	r.Observe(200, 1002*time.Nanosecond, 0)
	if snap := r.Snapshot(); len(snap.Exemplars) != 1 || snap.Exemplars[0].TraceID != 9 {
		t.Fatalf("untraced observation clobbered the exemplar: %+v", snap.Exemplars)
	}
	// ...but a stale exemplar (older than the window) stops being reported.
	clk.advance(10 * time.Second)
	if snap := r.Snapshot(); len(snap.Exemplars) != 0 {
		t.Fatalf("stale exemplar still reported: %+v", snap.Exemplars)
	}
}

func TestSLOBurnRates(t *testing.T) {
	_, cfg := testWindow(10, time.Second)
	r := NewRED(cfg)
	// 90 within-objective requests, 8 slow, 2 server errors (also slow).
	for i := 0; i < 90; i++ {
		r.Observe(200, time.Millisecond, 0)
	}
	for i := 0; i < 8; i++ {
		r.Observe(200, time.Second, 0)
	}
	r.Observe(500, time.Second, 0)
	r.Observe(504, time.Second, 0)
	slo := SLO{LatencyObjective: 250 * time.Millisecond, LatencyTarget: 0.99, ErrorTarget: 0.999}
	b := slo.Burn(r.Snapshot())
	if b.LatencyBadFraction < 0.0999 || b.LatencyBadFraction > 0.1001 {
		t.Errorf("latency bad fraction = %v, want ~0.10", b.LatencyBadFraction)
	}
	if got, want := b.LatencyBurnRate, 0.10/0.01; got < want*0.999 || got > want*1.001 {
		t.Errorf("latency burn = %v, want ~%v", got, want)
	}
	if b.ErrorBadFraction != 0.02 {
		t.Errorf("error bad fraction = %v, want 0.02", b.ErrorBadFraction)
	}
	if got, want := b.ErrorBurnRate, 0.02/0.001; got < want*0.999 || got > want*1.001 {
		t.Errorf("error burn = %v, want ~%v", got, want)
	}
	// Empty window: burn is zero, not NaN.
	if b := slo.Burn(NewRED(cfg).Snapshot()); b != (Burn{}) {
		t.Errorf("empty-window burn = %+v, want zero", b)
	}
}

func TestPruneWindow(t *testing.T) {
	clk, cfg := testWindow(4, time.Second)
	p := NewPruneWindow(cfg)
	p.Observe(obs.Counts{Rotations: 100, FullDistEvals: 10, FFTRejectedMembers: 30, KChanges: 2},
		[]int64{40, 20})
	p.Observe(obs.Counts{Rotations: 100, FullDistEvals: 10}, nil)
	snap := p.Snapshot()
	if snap.Counts.Rotations != 200 {
		t.Fatalf("rotations = %d, want 200", snap.Counts.Rotations)
	}
	if snap.PruneRate != 0.9 {
		t.Errorf("prune rate = %v, want 0.9", snap.PruneRate)
	}
	if snap.FFTRejectRate != 0.15 {
		t.Errorf("fft reject rate = %v, want 0.15", snap.FFTRejectRate)
	}
	if len(snap.LevelFraction) != 2 || snap.LevelFraction[0] != 0.2 || snap.LevelFraction[1] != 0.1 {
		t.Errorf("level fractions = %v, want [0.2 0.1]", snap.LevelFraction)
	}
	if snap.KChanges != 2 {
		t.Errorf("k changes = %d, want 2", snap.KChanges)
	}
	clk.advance(10 * time.Second)
	if snap := p.Snapshot(); snap.Counts.Rotations != 0 || snap.PruneRate != 0 {
		t.Fatalf("window did not expire: %+v", snap)
	}
}

func TestNilSinksAreNoOps(t *testing.T) {
	var r *RED
	var p *PruneWindow
	var prof *Profiler
	r.Observe(200, time.Second, 1)
	p.Observe(obs.Counts{Rotations: 1}, nil)
	prof.Start()
	prof.Stop()
	if s := r.Snapshot(); s.Requests != 0 {
		t.Error("nil RED snapshot not empty")
	}
	if s := p.Snapshot(); !s.Counts.IsZero() {
		t.Error("nil PruneWindow snapshot not empty")
	}
	if c := prof.Captures(); c != nil {
		t.Error("nil Profiler has captures")
	}
	rr := httptest.NewRecorder()
	prof.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/profiles", nil))
	if rr.Code != 404 {
		t.Errorf("nil profiler handler: status %d, want 404", rr.Code)
	}
}

func TestRuntimeMetricsExposition(t *testing.T) {
	var buf bytes.Buffer
	WriteRuntimeMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE lbkeogh_runtime_goroutines gauge",
		"# TYPE lbkeogh_runtime_heap_bytes gauge",
		"# TYPE lbkeogh_runtime_gc_cycles_total counter",
		"# TYPE lbkeogh_runtime_gc_pause_seconds histogram",
		"lbkeogh_runtime_gc_pause_seconds_sum NaN",
		"lbkeogh_runtime_sched_latency_seconds_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime exposition is missing %q\n%s", want, out)
		}
	}
}

func TestProfilerRingAndHandler(t *testing.T) {
	p := NewProfiler(ProfilerConfig{Interval: time.Hour, MaxCaptures: 3})
	p.Start()
	defer p.Stop()
	// Start takes an immediate heap capture; add more via the internal hook
	// to exercise ring eviction without waiting for the interval.
	for i := 0; i < 4; i++ {
		p.captureHeap()
	}
	caps := p.Captures()
	if len(caps) != 3 {
		t.Fatalf("ring holds %d captures, want 3 (bounded)", len(caps))
	}
	if caps[0].ID != 3 || caps[2].ID != 5 {
		t.Fatalf("ring kept wrong captures: %+v", caps)
	}

	h := p.Handler()
	get := func(target string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", target, nil))
		return rr
	}
	rr := get("/debug/profiles")
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "heap") {
		t.Fatalf("list: status %d body %q", rr.Code, rr.Body.String())
	}
	rr = get("/debug/profiles?id=5")
	if rr.Code != 200 || rr.Body.Len() == 0 {
		t.Fatalf("download: status %d, %d bytes", rr.Code, rr.Body.Len())
	}
	if rr := get("/debug/profiles?id=1"); rr.Code != 404 {
		t.Errorf("evicted capture: status %d, want 404", rr.Code)
	}
	if rr := get("/debug/profiles?id=x"); rr.Code != 400 {
		t.Errorf("bad id: status %d, want 400", rr.Code)
	}

	// The bundle is a valid tar.gz holding every retained capture.
	rr = get("/debug/profiles?bundle=1")
	if rr.Code != 200 {
		t.Fatalf("bundle: status %d", rr.Code)
	}
	gz, err := gzip.NewReader(rr.Body)
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	n := 0
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle tar: %v", err)
		}
		if !strings.HasSuffix(hdr.Name, ".pprof") {
			t.Errorf("bundle entry %q is not a .pprof", hdr.Name)
		}
		n++
	}
	if n != 3 {
		t.Errorf("bundle holds %d entries, want 3", n)
	}

	// Double Start must not launch a second loop (observable as idempotent
	// Stop/Start without panic or extra captures).
	p.Start()
	p.Stop()
	p.Stop()
}

func TestIDSourceIsUniqueAndConcurrent(t *testing.T) {
	src := NewIDSource()
	const n = 200
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				ids <- src.Next()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[string]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
}

func TestLoggerContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != Discard() {
		t.Error("background context does not yield the discard logger")
	}
	var buf bytes.Buffer
	l := NewLogger(&buf, "json", "info")
	ctx := WithLogger(context.Background(), l.With("request_id", "r-1"))
	FromContext(ctx).Info("hello", "k", "v")
	line := buf.String()
	for _, want := range []string{`"msg":"hello"`, `"request_id":"r-1"`, `"k":"v"`} {
		if !strings.Contains(line, want) {
			t.Errorf("log line %q is missing %s", line, want)
		}
	}
	// Debug is filtered at info level; text format and level parsing work.
	buf.Reset()
	l.Debug("dropped")
	if buf.Len() != 0 {
		t.Errorf("debug line emitted at info level: %q", buf.String())
	}
	if ParseLevel("debug") != slog.LevelDebug || ParseLevel("WARN") != slog.LevelWarn ||
		ParseLevel("bogus") != slog.LevelInfo {
		t.Error("ParseLevel mapping wrong")
	}
}

// TestREDConcurrentHammer drives one RED window from 8 writers while a
// reader snapshots — the package-level half of the -race coverage (the
// serving layer repeats it through /metrics).
func TestREDConcurrentHammer(t *testing.T) {
	r := NewRED(WindowConfig{Slots: 4, SlotDur: 10 * time.Millisecond})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe(200+g, time.Duration(i)*time.Microsecond, int64(i%3))
			}
		}(g)
	}
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	reader.Wait()
	if snap := r.Snapshot(); snap.Requests == 0 {
		t.Error("hammer left an empty window")
	}
}
