package ops

import (
	"fmt"
	"io"
	"strconv"
)

// WriteFamily writes one family's # HELP and # TYPE header in Prometheus
// text exposition format (0.0.4). Sample lines follow from the caller. Every
// family the serving layer exports funnels its name through WriteFamily or
// one of the Write* helpers below; the metricnames analyzer checks the name
// literal at each call site.
func WriteFamily(w io.Writer, name, kind, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// WriteCounter writes a complete single-sample counter family.
func WriteCounter(w io.Writer, name, help string, v int64) {
	WriteFamily(w, name, "counter", help)
	fmt.Fprintf(w, "%s %d\n", name, v)
}

// WriteGaugeInt writes a complete single-sample integer gauge family.
func WriteGaugeInt(w io.Writer, name, help string, v int64) {
	WriteFamily(w, name, "gauge", help)
	fmt.Fprintf(w, "%s %d\n", name, v)
}

// WriteGaugeFloat writes a complete single-sample float gauge family.
func WriteGaugeFloat(w io.Writer, name, help string, v float64) {
	WriteFamily(w, name, "gauge", help)
	fmt.Fprintf(w, "%s %s\n", name, FormatFloat(v))
}

// FormatFloat renders a sample value the exposition parsers accept,
// including NaN (used for histogram sums that have no exact value, matching
// the Prometheus client convention for runtime/metrics histograms).
func FormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
