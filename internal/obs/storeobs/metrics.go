package storeobs

import (
	"fmt"
	"io"
	"time"

	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/ops"
)

// WriteMetrics emits the lbkeogh_store_* families in Prometheus/OpenMetrics
// text form: cold/warm fetch counters and duration histograms (with trace
// exemplars on slow/cold buckets), per-column read histograms and totals,
// read-amplification accounting, the rolling fetch window, the latest
// residency sample, and the journal's per-kind event counters. Per-segment
// families are the server's (shapeserver_segment_*); this is the
// store-process view.
func (r *Recorder) WriteMetrics(w io.Writer) {
	if r == nil {
		return
	}
	t := r.Totals()

	ops.WriteFamily(w, "lbkeogh_store_fetches_total", "counter",
		"Record fetches served by the segment store, by page temperature (cold = the fetch first-touched at least one page).")
	fmt.Fprintf(w, "lbkeogh_store_fetches_total{temperature=\"cold\"} %d\n", t.ColdFetches)
	fmt.Fprintf(w, "lbkeogh_store_fetches_total{temperature=\"warm\"} %d\n", t.WarmFetches)

	ops.WriteFamily(w, "lbkeogh_store_fetch_duration_seconds", "histogram",
		"Store fetch wall time by temperature; slow and cold buckets carry exemplars linking to retained trace IDs.")
	for temp := numTemps - 1; temp >= 0; temp-- { // cold first
		ex := r.exemplars(temp)
		writeHistogram(w, "lbkeogh_store_fetch_duration_seconds",
			fmt.Sprintf("temperature=%q", tempNames[temp]), &r.fetchHist[temp], &ex)
	}

	ops.WriteFamily(w, "lbkeogh_store_read_duration_seconds", "histogram",
		"Backend column read wall time (page faults forced inside the timed region), by column and temperature.")
	for col := 0; col < NumColumns; col++ {
		for temp := numTemps - 1; temp >= 0; temp-- {
			h := &r.colHist[col][temp]
			if h.Count() == 0 {
				continue
			}
			writeHistogram(w, "lbkeogh_store_read_duration_seconds",
				fmt.Sprintf("column=%q,temperature=%q", columnNames[col], tempNames[temp]), h, nil)
		}
	}

	var colReads, colBytes [NumColumns]int64
	for _, s := range r.Segments() {
		for c := 0; c < NumColumns; c++ {
			colReads[c] += s.Reads[c]
			colBytes[c] += s.Bytes[c]
		}
	}
	ops.WriteFamily(w, "lbkeogh_store_column_reads_total", "counter",
		"Backend reads by column, summed over live segments.")
	for c := 0; c < NumColumns; c++ {
		fmt.Fprintf(w, "lbkeogh_store_column_reads_total{column=%q} %d\n", columnNames[c], colReads[c])
	}
	ops.WriteFamily(w, "lbkeogh_store_column_read_bytes_total", "counter",
		"Bytes logically read by column, summed over live segments.")
	for c := 0; c < NumColumns; c++ {
		fmt.Fprintf(w, "lbkeogh_store_column_read_bytes_total{column=%q} %d\n", columnNames[c], colBytes[c])
	}

	ops.WriteCounter(w, "lbkeogh_store_requested_bytes_total",
		"Bytes logically requested from segment backends.", t.RequestedBytes)
	ops.WriteCounter(w, "lbkeogh_store_faulted_pages_total",
		"Pages first-touched by segment reads (4KiB accounting pages).", t.FaultedPages)
	ops.WriteGaugeFloat(w, "lbkeogh_store_read_amplification",
		"First-touched page bytes over logically requested bytes.", t.ReadAmplification())

	ops.WriteFamily(w, "lbkeogh_store_window_fetches", "gauge",
		"Store fetches inside the rolling window, by temperature.")
	coldSnap, warmSnap := r.window[tempCold].Snapshot(), r.window[tempWarm].Snapshot()
	fmt.Fprintf(w, "lbkeogh_store_window_fetches{temperature=\"cold\"} %d\n", coldSnap.Requests)
	fmt.Fprintf(w, "lbkeogh_store_window_fetches{temperature=\"warm\"} %d\n", warmSnap.Requests)
	ops.WriteFamily(w, "lbkeogh_store_window_fetch_p99_seconds", "gauge",
		"Bucket-resolution p99 store fetch latency inside the rolling window, by temperature.")
	fmt.Fprintf(w, "lbkeogh_store_window_fetch_p99_seconds{temperature=\"cold\"} %s\n", formatQuantileNS(coldSnap.P99NS))
	fmt.Fprintf(w, "lbkeogh_store_window_fetch_p99_seconds{temperature=\"warm\"} %s\n", formatQuantileNS(warmSnap.P99NS))

	res, resAt := r.Residency()
	supported := int64(0)
	var resident, mapped int64
	if residencySupported(res) {
		supported = 1
		for _, s := range res {
			resident += s.ResidentBytes
			mapped += s.MappedBytes
		}
	}
	ops.WriteGaugeInt(w, "lbkeogh_store_residency_supported",
		"1 when the latest page-residency sample measured at least one segment (mincore over an mmap backend); 0 before the first sample or where unsupported.", supported)
	ops.WriteGaugeInt(w, "lbkeogh_store_resident_bytes",
		"Resident bytes across live segment mappings at the latest residency sample.", resident)
	ops.WriteGaugeInt(w, "lbkeogh_store_residency_sampled_bytes",
		"Mapped bytes covered by the latest residency sample.", mapped)
	age := float64(0)
	if !resAt.IsZero() {
		age = time.Since(resAt).Seconds()
	}
	ops.WriteGaugeFloat(w, "lbkeogh_store_residency_age_seconds",
		"Seconds since the latest residency sample (0 before the first).", age)

	ops.WriteFamily(w, "lbkeogh_store_journal_events_total", "counter",
		"Storage event journal entries by kind; reconciles with the store's ingest/compaction counters.")
	counts := r.Journal().Counts()
	for _, kind := range EventKinds {
		fmt.Fprintf(w, "lbkeogh_store_journal_events_total{kind=%q} %d\n", kind, counts[kind])
	}
}

// formatQuantileNS renders a bucket-resolution quantile (ns) as seconds; the
// overflow marker (-1) clamps to the largest finite bucket bound.
func formatQuantileNS(ns int64) string {
	if ns < 0 {
		ns = obs.BucketBound(obs.HistogramBuckets - 1)
	}
	return ops.FormatFloat(float64(ns) / 1e9)
}

// writeHistogram emits one cumulative histogram series from an obs.Histogram
// in the repo's exposition style (see writeREDHistogram in internal/server):
// interior buckets that add nothing are skipped unless they carry an
// exemplar, the overflow bucket folds into +Inf, and durations are seconds.
func writeHistogram(w io.Writer, name, labels string, h *obs.Histogram, ex *[obs.HistogramBuckets + 1]fetchExemplar) {
	counts := make(map[int64]int64)
	for _, b := range h.Buckets() {
		counts[b.UpperBound] = b.Count
	}
	var cum, prev int64
	for i := 0; i < obs.HistogramBuckets; i++ {
		bound := obs.BucketBound(i)
		cum += counts[bound]
		var e fetchExemplar
		if ex != nil {
			e = ex[i]
		}
		if cum == prev && i > 0 && e.traceID == 0 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d", name, labels, ops.FormatFloat(float64(bound)/1e9), cum)
		writeFetchExemplar(w, e)
		fmt.Fprintln(w)
		prev = cum
	}
	total := cum + counts[-1]
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d", name, labels, total)
	if ex != nil {
		writeFetchExemplar(w, ex[obs.HistogramBuckets])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, ops.FormatFloat(float64(h.Sum())/1e9))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, total)
}

func writeFetchExemplar(w io.Writer, e fetchExemplar) {
	if e.traceID == 0 {
		return
	}
	fmt.Fprintf(w, " # {trace_id=\"%d\"} %s %s",
		e.traceID, ops.FormatFloat(float64(e.durNS)/1e9),
		ops.FormatFloat(float64(e.wall.UnixNano())/1e9))
}
