// Package storeobs is the storage-plane observability layer for the
// mmap-backed segment store (internal/segment). The query plane already has
// SearchStats, traces, and rolling request windows; at disk-resident scale
// those stop where the interesting costs begin — page faults, cold reads,
// compaction churn. storeobs makes that plane legible:
//
//   - per-segment × per-column access accounting (fetch counts, bytes
//     touched, last access) via SegmentAccount,
//   - a cold/warm split for every read, classified by a first-touch page
//     bitmap (deterministic across the mmap and pread backends), with
//     read-amplification accounting (bytes logically requested vs pages
//     actually faulted),
//   - rolling cold/warm fetch windows reusing the ops.RED machinery, with
//     deferred trace-ID exemplars (LinkTrace) for slow and cold fetches,
//   - a bounded structured storage event journal (Journal),
//   - a periodic page-residency sampler (Sampler) that never runs on the
//     query path.
//
// Everything is nil-safe: a nil *Recorder, *SegmentAccount, or *Journal is a
// no-op sink, so the disabled path through the segment store costs exactly
// one nil check on the fetch hot path.
package storeobs

import (
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/ops"
)

// Column indexes match the section order of the on-disk segment layout
// (internal/segment): raw series, FFT magnitudes, PAA sketch, meta labels.
const (
	ColRaw = iota
	ColFFT
	ColPAA
	ColMeta
	NumColumns
)

var columnNames = [NumColumns]string{"raw", "fft", "paa", "meta"}

// ColumnName returns the exposition label for a column index.
func ColumnName(col int) string {
	if col < 0 || col >= NumColumns {
		return "unknown"
	}
	return columnNames[col]
}

// PageSize is the page granularity of the first-touch bitmap and of the
// read-amplification accounting. The classification only needs to agree with
// itself across backends, so a fixed 4 KiB is used rather than the host page
// size — classification stays deterministic on hugepage kernels too.
const PageSize = 4096

// Fetch temperatures: a cold access touched at least one page no prior
// access had touched; everything else is warm.
const (
	tempWarm = iota
	tempCold
	numTemps
)

var tempNames = [numTemps]string{"warm", "cold"}

// SegmentAccount accumulates per-column access counters and the first-touch
// page bitmap for one open segment. All methods are safe for concurrent use
// and a nil receiver is a no-op.
type SegmentAccount struct {
	rec  *Recorder
	name string
	size int64

	reads  [NumColumns]atomic.Int64
	bytes  [NumColumns]atomic.Int64
	lastNS atomic.Int64

	touched      []atomic.Uint64 // 1 bit per PageSize page of the file
	touchedPages atomic.Int64
}

// Covered reports whether every page of [off, off+size) has already been
// touched — i.e. whether a read of that range is warm. Read-only: Covered
// never marks.
func (a *SegmentAccount) Covered(off, size int64) bool {
	if a == nil {
		return false
	}
	if size <= 0 {
		return true
	}
	first, last := off/PageSize, (off+size-1)/PageSize
	for p := first; p <= last; p++ {
		w := int(p >> 6)
		if w >= len(a.touched) {
			return false
		}
		if a.touched[w].Load()&(1<<(uint(p)&63)) == 0 {
			return false
		}
	}
	return true
}

// mark sets the bitmap bits for [off, off+size) and returns how many pages
// were first-touched by this call. CAS loop: go1.22 atomic.Uint64 has no Or.
func (a *SegmentAccount) mark(off, size int64) (newPages int64) {
	first, last := off/PageSize, (off+size-1)/PageSize
	for p := first; p <= last; p++ {
		w := int(p >> 6)
		if w >= len(a.touched) {
			break
		}
		word := &a.touched[w]
		bit := uint64(1) << (uint(p) & 63)
		for {
			old := word.Load()
			if old&bit != 0 {
				break
			}
			if word.CompareAndSwap(old, old|bit) {
				newPages++
				break
			}
		}
	}
	return newPages
}

// ObserveRead folds one column read into the account: per-column counters,
// last-access time, the first-touch bitmap, and the recorder's cold/warm
// column histograms and read-amplification totals. The read is cold when it
// first-touched at least one page.
func (a *SegmentAccount) ObserveRead(col int, off, size int64, durNS int64) {
	if a == nil {
		return
	}
	if col < 0 || col >= NumColumns {
		col = ColMeta
	}
	a.reads[col].Add(1)
	a.bytes[col].Add(size)
	a.lastNS.Store(time.Now().UnixNano())
	newPages := a.mark(off, size)
	if newPages > 0 {
		a.touchedPages.Add(newPages)
	}
	a.rec.observeColumnRead(col, size, newPages, durNS)
}

// SegmentStats is one account's counters at a point in time.
type SegmentStats struct {
	Segment   string `json:"segment"`
	FileBytes int64  `json:"file_bytes"`
	// Reads and Bytes are indexed by column (ColRaw..ColMeta).
	Reads [NumColumns]int64 `json:"reads"`
	Bytes [NumColumns]int64 `json:"bytes"`
	// Pages is the file's page count; TouchedPages of those have been
	// accessed at least once since the account was attached.
	Pages        int64     `json:"pages"`
	TouchedPages int64     `json:"touched_pages"`
	LastAccess   time.Time `json:"last_access"`
}

// TotalReads sums the per-column read counts.
func (s SegmentStats) TotalReads() int64 {
	var t int64
	for _, r := range s.Reads {
		t += r
	}
	return t
}

// fetchExemplar is a deferred exemplar slot: the fetch that filled it did
// not yet know its trace ID (trace IDs are assigned at trace.Log.Finish),
// so LinkTrace stamps pending slots after the fact.
type fetchExemplar struct {
	traceID int64
	durNS   int64
	wall    time.Time
	pending bool
}

// Config shapes a Recorder.
type Config struct {
	// Window shapes the rolling cold/warm fetch windows (zero value: the
	// ops default, 60 slots × 1s).
	Window ops.WindowConfig
	// JournalSize bounds the storage event ring (default 512 events).
	JournalSize int
	// Logger, when set, mirrors every journal event as a structured slog
	// line (the ring is kept either way).
	Logger *slog.Logger
	// SlowFetchThreshold marks a warm fetch slow enough to pin an exemplar
	// slot (default 1ms). Cold fetches always pin one.
	SlowFetchThreshold time.Duration
}

// Recorder aggregates storage-plane telemetry for one segment store: the
// per-segment accounts, cumulative cold/warm histograms, rolling fetch
// windows, read-amplification totals, the event journal, and the latest
// residency sample. A nil *Recorder is a no-op sink everywhere.
type Recorder struct {
	slowNS int64
	window [numTemps]*ops.RED
	jrn    *Journal

	mu       sync.Mutex
	accounts map[string]*SegmentAccount

	fetches   [numTemps]atomic.Int64
	fetchHist [numTemps]obs.Histogram             // store-fetch wall time, ns
	colHist   [NumColumns][numTemps]obs.Histogram // backend read wall time, ns

	requestedBytes atomic.Int64
	faultedPages   atomic.Int64

	exMu sync.Mutex
	ex   [numTemps][obs.HistogramBuckets + 1]fetchExemplar

	resMu sync.Mutex
	res   []SegmentResidency
	resAt time.Time
}

// NewRecorder builds a Recorder.
func NewRecorder(cfg Config) *Recorder {
	slow := cfg.SlowFetchThreshold
	if slow <= 0 {
		slow = time.Millisecond
	}
	r := &Recorder{
		slowNS:   slow.Nanoseconds(),
		jrn:      NewJournal(cfg.JournalSize, cfg.Logger),
		accounts: make(map[string]*SegmentAccount),
	}
	for t := range r.window {
		r.window[t] = ops.NewRED(cfg.Window)
	}
	return r
}

// Journal returns the recorder's storage event journal (nil from a nil
// recorder; a nil Journal is itself a no-op sink).
func (r *Recorder) Journal() *Journal {
	if r == nil {
		return nil
	}
	return r.jrn
}

// Segment returns the account for a segment file, creating it on first use.
// fileBytes sizes the first-touch bitmap; repeated calls for the same name
// return the existing account.
func (r *Recorder) Segment(name string, fileBytes int64) *SegmentAccount {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if a, ok := r.accounts[name]; ok {
		return a
	}
	pages := (fileBytes + PageSize - 1) / PageSize
	a := &SegmentAccount{
		rec:     r,
		name:    name,
		size:    fileBytes,
		touched: make([]atomic.Uint64, (pages+63)/64),
	}
	r.accounts[name] = a
	return a
}

// DropSegment forgets a segment's account — called when a merged-away
// segment file is unlinked, so dead segments stop appearing in per-segment
// metric families.
func (r *Recorder) DropSegment(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.accounts, name)
	r.mu.Unlock()
}

// Segments snapshots every live account, sorted by segment name.
func (r *Recorder) Segments() []SegmentStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	accts := make([]*SegmentAccount, 0, len(r.accounts))
	for _, a := range r.accounts {
		accts = append(accts, a)
	}
	r.mu.Unlock()
	out := make([]SegmentStats, 0, len(accts))
	for _, a := range accts {
		s := SegmentStats{
			Segment:      a.name,
			FileBytes:    a.size,
			Pages:        (a.size + PageSize - 1) / PageSize,
			TouchedPages: a.touchedPages.Load(),
		}
		for c := 0; c < NumColumns; c++ {
			s.Reads[c] = a.reads[c].Load()
			s.Bytes[c] = a.bytes[c].Load()
		}
		if ns := a.lastNS.Load(); ns != 0 {
			s.LastAccess = time.Unix(0, ns)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Segment < out[j].Segment })
	return out
}

// ObserveFetch records one store-level record fetch (the segment.DB.Fetch
// hot path): temperature counters, the cumulative duration histogram, the
// rolling window, and — for cold or slow fetches — a pending exemplar slot
// that LinkTrace stamps once the surrounding query's trace ID exists.
func (r *Recorder) ObserveFetch(cold bool, dur time.Duration) {
	if r == nil {
		return
	}
	t := tempWarm
	if cold {
		t = tempCold
	}
	ns := dur.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	r.fetches[t].Add(1)
	r.fetchHist[t].Observe(ns)
	r.window[t].Observe(200, dur, 0)
	if cold || ns >= r.slowNS {
		b := obs.BucketIndex(ns)
		r.exMu.Lock()
		r.ex[t][b] = fetchExemplar{durNS: ns, wall: time.Now(), pending: true}
		r.exMu.Unlock()
	}
}

// LinkTrace stamps every pending exemplar slot with a just-assigned trace
// ID. Trace IDs exist only after trace.Log.Finish, so the store cannot know
// them at fetch time; the index layer calls LinkTrace when it finishes a
// retained trace, attributing the query's recent slow/cold fetches to it.
// Best-effort under concurrency: parallel queries may steal each other's
// slots, which costs exemplar precision, never correctness.
func (r *Recorder) LinkTrace(id int64) {
	if r == nil || id == 0 {
		return
	}
	r.exMu.Lock()
	for t := range r.ex {
		for b := range r.ex[t] {
			if r.ex[t][b].pending {
				r.ex[t][b].traceID = id
				r.ex[t][b].pending = false
			}
		}
	}
	r.exMu.Unlock()
}

// exemplars snapshots the linked exemplar slots for one temperature, indexed
// by histogram bucket. Unlinked (pending or never-stamped) slots are zero.
func (r *Recorder) exemplars(t int) [obs.HistogramBuckets + 1]fetchExemplar {
	var out [obs.HistogramBuckets + 1]fetchExemplar
	r.exMu.Lock()
	for b := range r.ex[t] {
		if !r.ex[t][b].pending && r.ex[t][b].traceID != 0 {
			out[b] = r.ex[t][b]
		}
	}
	r.exMu.Unlock()
	return out
}

// observeColumnRead folds one backend read into the recorder-level
// aggregates: the per-column cold/warm duration histogram and the
// read-amplification totals.
func (r *Recorder) observeColumnRead(col int, size, newPages, durNS int64) {
	if r == nil {
		return
	}
	t := tempWarm
	if newPages > 0 {
		t = tempCold
	}
	r.colHist[col][t].Observe(durNS)
	r.requestedBytes.Add(size)
	if newPages > 0 {
		r.faultedPages.Add(newPages)
	}
}

// Totals is the store-wide cold/warm and read-amplification view.
type Totals struct {
	ColdFetches int64 `json:"cold_fetches"`
	WarmFetches int64 `json:"warm_fetches"`
	// RequestedBytes is what callers logically asked for; FaultedPages is
	// how many PageSize pages those reads first-touched. Their ratio is the
	// read amplification of the access pattern.
	RequestedBytes int64 `json:"requested_bytes"`
	FaultedPages   int64 `json:"faulted_pages"`
}

// Fetches is the total store-fetch count, both temperatures.
func (t Totals) Fetches() int64 { return t.ColdFetches + t.WarmFetches }

// ReadAmplification is faulted bytes over requested bytes: 1.0 means every
// faulted byte was asked for; large values mean page-granular I/O dominates
// the logical request size. 0 when nothing has been requested.
func (t Totals) ReadAmplification() float64 {
	if t.RequestedBytes == 0 {
		return 0
	}
	return float64(t.FaultedPages*PageSize) / float64(t.RequestedBytes)
}

// Totals snapshots the store-wide counters.
func (r *Recorder) Totals() Totals {
	if r == nil {
		return Totals{}
	}
	return Totals{
		ColdFetches:    r.fetches[tempCold].Load(),
		WarmFetches:    r.fetches[tempWarm].Load(),
		RequestedBytes: r.requestedBytes.Load(),
		FaultedPages:   r.faultedPages.Load(),
	}
}
