package storeobs

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lbkeogh/internal/obs/expofmt"
)

func TestJournalRingAndCounts(t *testing.T) {
	j := NewJournal(4, nil)
	for i := 0; i < 10; i++ {
		j.Record(Event{Kind: EventIngestBatch, Records: int64(i)})
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first)", i, ev.Seq, want)
		}
		if ev.Wall.IsZero() {
			t.Fatalf("event %d has no wall time", i)
		}
	}
	if got := j.Counts()[EventIngestBatch]; got != 10 {
		t.Fatalf("counts survived rotation: got %d, want 10", got)
	}
	if j.Len() != 10 {
		t.Fatalf("Len = %d, want 10", j.Len())
	}

	var sb strings.Builder
	if err := j.WriteJSONL(&sb); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL has %d lines, want 4", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"ingest_batch"`) {
		t.Fatalf("JSONL line missing kind: %s", lines[0])
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(Event{Kind: EventManifestSwap})
	if j.Events() != nil || j.Len() != 0 {
		t.Fatal("nil journal is not empty")
	}
	if len(j.Counts()) != 0 {
		t.Fatal("nil journal has counts")
	}
}

func TestSegmentAccountColdWarm(t *testing.T) {
	r := NewRecorder(Config{})
	a := r.Segment("seg-000001.lbseg", 3*PageSize)

	if a.Covered(0, 512) {
		t.Fatal("untouched range reports covered")
	}
	a.ObserveRead(ColRaw, 0, 512, 1000)
	if !a.Covered(0, 512) {
		t.Fatal("touched range not covered")
	}
	if a.Covered(PageSize, 8) {
		t.Fatal("page 1 covered before any touch")
	}
	// Same page again: warm, no new pages.
	a.ObserveRead(ColRaw, 512, 512, 1000)
	// Straddle pages 1-2: cold, two new pages.
	a.ObserveRead(ColFFT, PageSize+PageSize/2, PageSize, 1000)

	tot := r.Totals()
	if tot.FaultedPages != 3 {
		t.Fatalf("faulted pages = %d, want 3", tot.FaultedPages)
	}
	if want := int64(512 + 512 + PageSize); tot.RequestedBytes != want {
		t.Fatalf("requested bytes = %d, want %d", tot.RequestedBytes, want)
	}
	wantAmp := float64(3*PageSize) / float64(512+512+PageSize)
	if amp := tot.ReadAmplification(); amp < wantAmp-1e-9 || amp > wantAmp+1e-9 {
		t.Fatalf("read amplification = %v, want %v", amp, wantAmp)
	}

	segs := r.Segments()
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	s := segs[0]
	if s.Reads[ColRaw] != 2 || s.Reads[ColFFT] != 1 {
		t.Fatalf("per-column reads = %v", s.Reads)
	}
	if s.TouchedPages != 3 || s.Pages != 3 {
		t.Fatalf("touched/total pages = %d/%d, want 3/3", s.TouchedPages, s.Pages)
	}
	if s.LastAccess.IsZero() {
		t.Fatal("no last-access time")
	}

	r.DropSegment("seg-000001.lbseg")
	if len(r.Segments()) != 0 {
		t.Fatal("dropped segment still listed")
	}
}

func TestSegmentAccountIdempotentRegistration(t *testing.T) {
	r := NewRecorder(Config{})
	a := r.Segment("x.lbseg", PageSize)
	if r.Segment("x.lbseg", PageSize) != a {
		t.Fatal("re-registration returned a different account")
	}
}

func TestObserveFetchAndLinkTrace(t *testing.T) {
	r := NewRecorder(Config{SlowFetchThreshold: time.Hour})
	r.ObserveFetch(true, 5*time.Millisecond) // cold: pins an exemplar slot
	r.ObserveFetch(false, time.Microsecond)  // warm, fast: no slot
	tot := r.Totals()
	if tot.ColdFetches != 1 || tot.WarmFetches != 1 {
		t.Fatalf("cold/warm = %d/%d, want 1/1", tot.ColdFetches, tot.WarmFetches)
	}

	var sb strings.Builder
	r.WriteMetrics(&sb)
	if strings.Contains(sb.String(), "trace_id") {
		t.Fatal("exemplar emitted before any trace was linked")
	}

	r.LinkTrace(42)
	sb.Reset()
	r.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), `# {trace_id="42"}`) {
		t.Fatal("linked exemplar not emitted")
	}
}

func TestWriteMetricsParses(t *testing.T) {
	r := NewRecorder(Config{})
	a := r.Segment("seg-000001.lbseg", 2*PageSize)
	a.ObserveRead(ColRaw, 0, 1024, 2500)
	a.ObserveRead(ColPAA, PageSize, 64, 900)
	r.ObserveFetch(true, 3*time.Millisecond)
	r.ObserveFetch(false, 40*time.Microsecond)
	r.LinkTrace(7)
	r.Journal().Record(Event{Kind: EventSegmentCreated, Segment: "seg-000001.lbseg"})
	r.setResidency([]SegmentResidency{{Segment: "seg-000001.lbseg", MappedBytes: 2 * PageSize, ResidentBytes: PageSize}}, time.Now())

	var sb strings.Builder
	r.WriteMetrics(&sb)
	exp, err := expofmt.Parse(sb.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	if got := exp.Counter("lbkeogh_store_fetches_total", map[string]string{"temperature": "cold"}); got != 1 {
		t.Fatalf("cold fetches = %d, want 1", got)
	}
	if got := exp.Counter("lbkeogh_store_journal_events_total", map[string]string{"kind": "segment_created"}); got != 1 {
		t.Fatalf("journal counter = %d, want 1", got)
	}
	// The full kind vocabulary is zero-filled.
	for _, kind := range EventKinds {
		if _, ok := exp.Value("lbkeogh_store_journal_events_total", map[string]string{"kind": kind}); !ok {
			t.Fatalf("journal family missing kind %q", kind)
		}
	}
	if v, ok := exp.Value("lbkeogh_store_residency_supported", nil); !ok || v != 1 {
		t.Fatalf("residency_supported = %v,%v, want 1", v, ok)
	}
	if v, ok := exp.Value("lbkeogh_store_resident_bytes", nil); !ok || v != PageSize {
		t.Fatalf("resident_bytes = %v, want %d", v, PageSize)
	}
	if v, ok := exp.Value("lbkeogh_store_read_amplification", nil); !ok || v <= 0 {
		t.Fatalf("read_amplification = %v, want > 0", v)
	}
}

func TestResidencyUnsupportedIsNotZeros(t *testing.T) {
	r := NewRecorder(Config{})
	r.setResidency([]SegmentResidency{
		{Segment: "a.lbseg", Err: "residency unsupported on this backend"},
	}, time.Now())
	var sb strings.Builder
	r.WriteMetrics(&sb)
	exp, err := expofmt.Parse(sb.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, _ := exp.Value("lbkeogh_store_residency_supported", nil); v != 0 {
		t.Fatalf("unsupported sample reported supported=%v", v)
	}
	sr := SegmentResidency{Segment: "a.lbseg", Err: "nope", MappedBytes: 100}
	if sr.Fraction() != 0 {
		t.Fatal("errored sample has a non-zero fraction")
	}
}

func TestSampler(t *testing.T) {
	r := NewRecorder(Config{})
	var calls atomic.Int64
	s := NewSampler(r, func() []SegmentResidency {
		calls.Add(1)
		return []SegmentResidency{{Segment: "s.lbseg", MappedBytes: 10, ResidentBytes: 5}}
	}, 5*time.Millisecond)
	s.Start()
	res, at := r.Residency()
	if len(res) != 1 || at.IsZero() {
		t.Fatal("Start did not take an immediate sample")
	}
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if calls.Load() < 2 {
		t.Fatalf("sampler ticked %d times, want >= 2", calls.Load())
	}
	s.Stop() // idempotent
	var nils *Sampler
	nils.Start()
	nils.Stop()
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.ObserveFetch(true, time.Second)
	r.LinkTrace(9)
	r.Segment("x", 100).ObserveRead(ColRaw, 0, 8, 1)
	r.DropSegment("x")
	r.Journal().Record(Event{Kind: EventManifestSwap})
	if r.Totals() != (Totals{}) {
		t.Fatal("nil recorder accumulated totals")
	}
	var sb strings.Builder
	r.WriteMetrics(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil recorder wrote metrics")
	}
	if s := r.Segments(); s != nil {
		t.Fatal("nil recorder listed segments")
	}
}
