package storeobs

import (
	"sync"
	"time"
)

// SegmentResidency is one segment's page residency at a sample instant, as
// reported by mincore over the segment's mapping. Err is set (and the byte
// counts zero) when residency cannot be measured — pread backend, non-Linux
// platform — so "unsupported" is never mistaken for "fully evicted".
type SegmentResidency struct {
	Segment       string `json:"segment"`
	MappedBytes   int64  `json:"mapped_bytes"`
	ResidentBytes int64  `json:"resident_bytes"`
	Err           string `json:"error,omitempty"`
}

// Fraction is resident over mapped bytes, 0 when unmeasurable.
func (sr SegmentResidency) Fraction() float64 {
	if sr.Err != "" || sr.MappedBytes == 0 {
		return 0
	}
	return float64(sr.ResidentBytes) / float64(sr.MappedBytes)
}

// setResidency installs the latest residency sample.
func (r *Recorder) setResidency(samples []SegmentResidency, at time.Time) {
	if r == nil {
		return
	}
	r.resMu.Lock()
	r.res, r.resAt = samples, at
	r.resMu.Unlock()
}

// Residency returns the latest sample and when it was taken (zero time when
// no sample has run yet).
func (r *Recorder) Residency() ([]SegmentResidency, time.Time) {
	if r == nil {
		return nil, time.Time{}
	}
	r.resMu.Lock()
	defer r.resMu.Unlock()
	return r.res, r.resAt
}

// residencySupported reports whether the latest sample measured anything:
// true when at least one segment answered without error. False both before
// the first sample and on platforms/backends where mincore is unavailable.
func residencySupported(samples []SegmentResidency) bool {
	for _, s := range samples {
		if s.Err == "" {
			return true
		}
	}
	return false
}

// Sampler periodically runs a residency probe off the query path and stores
// the result on the recorder. The probe is supplied by the segment layer
// (it needs the live mappings); the sampler owns only the cadence.
type Sampler struct {
	rec      *Recorder
	probe    func() []SegmentResidency
	interval time.Duration

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewSampler builds a sampler; interval defaults to 30s. Returns nil when
// the recorder or probe is nil (Start/Stop on a nil sampler are no-ops).
func NewSampler(rec *Recorder, probe func() []SegmentResidency, interval time.Duration) *Sampler {
	if rec == nil || probe == nil {
		return nil
	}
	if interval <= 0 {
		interval = 30 * time.Second
	}
	return &Sampler{rec: rec, probe: probe, interval: interval}
}

// Start probes once immediately (so metrics never serve an empty sample
// just because the first tick has not fired) and then keeps sampling every
// interval until Stop.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.rec.setResidency(s.probe(), time.Now())
	go s.loop(s.stop, s.done)
}

func (s *Sampler) loop(stop chan struct{}, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.rec.setResidency(s.probe(), time.Now())
		}
	}
}

// Stop halts the sampler and waits for the loop to exit.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
