package storeobs

import (
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"time"
)

// Storage event kinds. The vocabulary is closed so metric exposition can
// emit a stable, zero-filled lbkeogh_store_journal_events_total{kind=...}
// family that smoke tests reconcile against counter deltas.
const (
	EventSegmentCreated   = "segment_created"
	EventSegmentSealed    = "segment_sealed"
	EventSegmentCompacted = "segment_compacted"
	EventSegmentUnlinked  = "segment_unlinked"
	EventSegmentOrphaned  = "segment_orphaned"
	EventManifestSwap     = "manifest_swap"
	EventIngestBatch      = "ingest_batch"
	EventSnapshotPin      = "snapshot_pin"
	EventSnapshotRelease  = "snapshot_release"
)

// EventKinds lists the full journal vocabulary in exposition order.
var EventKinds = []string{
	EventSegmentCreated,
	EventSegmentSealed,
	EventSegmentCompacted,
	EventSegmentUnlinked,
	EventSegmentOrphaned,
	EventManifestSwap,
	EventIngestBatch,
	EventSnapshotPin,
	EventSnapshotRelease,
}

// Event is one storage-plane lifecycle event. Zero-valued fields are
// omitted from the JSONL form; Seq and Wall are assigned by Record.
type Event struct {
	Seq  int64     `json:"seq"`
	Wall time.Time `json:"wall"`
	Kind string    `json:"kind"`

	Segment    string `json:"segment,omitempty"`
	Generation int64  `json:"generation,omitempty"`
	Records    int64  `json:"records,omitempty"`
	Bytes      int64  `json:"bytes,omitempty"`
	// ReclaimedBytes is the net disk space a compaction returns once the
	// merged-away files are unlinked.
	ReclaimedBytes  int64   `json:"reclaimed_bytes,omitempty"`
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	Note            string  `json:"note,omitempty"`
}

// Journal is a bounded ring of storage events with per-kind counters,
// optionally mirrored to a structured logger. Safe for concurrent use; a
// nil *Journal is a no-op sink.
type Journal struct {
	logger *slog.Logger

	mu     sync.Mutex
	ring   []Event
	pos    int // next overwrite position once the ring is full
	seq    int64
	counts map[string]int64
}

// NewJournal builds a journal bounded to size events (default 512).
func NewJournal(size int, logger *slog.Logger) *Journal {
	if size <= 0 {
		size = 512
	}
	return &Journal{
		logger: logger,
		ring:   make([]Event, 0, size),
		counts: make(map[string]int64),
	}
}

// Record appends one event, assigning its sequence number and wall time
// (unless the caller stamped one), and mirrors it to the logger if set.
func (j *Journal) Record(ev Event) {
	if j == nil {
		return
	}
	if ev.Wall.IsZero() {
		ev.Wall = time.Now()
	}
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, ev)
	} else {
		j.ring[j.pos] = ev
		j.pos = (j.pos + 1) % cap(j.ring)
	}
	j.counts[ev.Kind]++
	j.mu.Unlock()
	if j.logger != nil {
		args := make([]any, 0, 16)
		args = append(args, "kind", ev.Kind, "seq", ev.Seq)
		if ev.Segment != "" {
			args = append(args, "segment", ev.Segment)
		}
		if ev.Generation != 0 {
			args = append(args, "generation", ev.Generation)
		}
		if ev.Records != 0 {
			args = append(args, "records", ev.Records)
		}
		if ev.Bytes != 0 {
			args = append(args, "bytes", ev.Bytes)
		}
		if ev.ReclaimedBytes != 0 {
			args = append(args, "reclaimed_bytes", ev.ReclaimedBytes)
		}
		if ev.DurationSeconds != 0 {
			args = append(args, "duration_seconds", ev.DurationSeconds)
		}
		if ev.Note != "" {
			args = append(args, "note", ev.Note)
		}
		j.logger.Info("storage event", args...)
	}
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.ring))
	if len(j.ring) == cap(j.ring) {
		out = append(out, j.ring[j.pos:]...)
		out = append(out, j.ring[:j.pos]...)
	} else {
		out = append(out, j.ring...)
	}
	return out
}

// Counts returns the per-kind totals since the journal was created. Unlike
// the ring, counts never forget: they stay reconcilable against monotonic
// /metrics counters even after old events rotate out.
func (j *Journal) Counts() map[string]int64 {
	out := make(map[string]int64, len(EventKinds))
	if j == nil {
		return out
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for k, v := range j.counts {
		out[k] = v
	}
	return out
}

// Len is the number of events recorded since creation (not the ring size).
func (j *Journal) Len() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// WriteJSONL streams the retained events, one JSON object per line, oldest
// first.
func (j *Journal) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range j.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
