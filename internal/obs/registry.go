package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter metric. A nil
// *Counter is a no-op sink.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.Add(1)
}

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry holds named metrics (counters, histograms, SearchStats records)
// and renders them in Prometheus text exposition format or as an expvar.
// All methods are safe for concurrent use. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	names  []string // registration order, for deterministic output
	help   map[string]string
	counts map[string]*Counter
	hists  map[string]*Histogram
	stats  map[string]*SearchStats
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{
		help:   map[string]string{},
		counts: map[string]*Counter{},
		hists:  map[string]*Histogram{},
		stats:  map[string]*SearchStats{},
	}
}

func (r *Registry) register(name, help string) {
	if _, dup := r.help[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.help[name] = help
	r.names = append(r.names, name)
}

// Counter registers and returns a counter metric.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help)
	c := &Counter{}
	r.counts[name] = c
	return c
}

// Histogram registers and returns a fixed-bucket histogram metric.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help)
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// SearchStats registers an existing SearchStats record; its snapshot fields
// are exported as `<name>_<field>` gauges.
func (r *Registry) SearchStats(name, help string, s *SearchStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help)
	r.stats[name] = s
}

// statsFields flattens a snapshot into stable name/value pairs for export.
func statsFields(sn Snapshot) []struct {
	Name  string
	Value int64
} {
	return []struct {
		Name  string
		Value int64
	}{
		{"comparisons", sn.Comparisons},
		{"rotations", sn.Rotations},
		{"steps", sn.Steps},
		{"full_dist_evals", sn.FullDistEvals},
		{"early_abandons", sn.EarlyAbandons},
		{"wedge_node_visits", sn.WedgeNodeVisits},
		{"wedge_leaf_visits", sn.WedgeLeafVisits},
		{"wedge_pruned_members", sn.WedgePrunedMembers},
		{"wedge_leaf_lb_prunes", sn.WedgeLeafLBPrunes},
		{"fft_rejects", sn.FFTRejects},
		{"fft_rejected_members", sn.FFTRejectedMembers},
		{"fft_fallbacks", sn.FFTFallbacks},
		{"index_candidates", sn.IndexCandidates},
		{"index_fetches", sn.IndexFetches},
		{"disk_reads", sn.DiskReads},
		{"k_changes", sn.KChanges},
	}
}

// WriteMetrics renders every registered metric in Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WriteMetrics(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	for _, name := range names {
		r.mu.Lock()
		help := r.help[name]
		c := r.counts[name]
		h := r.hists[name]
		s := r.stats[name]
		r.mu.Unlock()
		switch {
		case c != nil:
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				name, help, name, name, c.Value()); err != nil {
				return err
			}
		case h != nil:
			cum, sum, count := h.cumulative()
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
				return err
			}
			for i, v := range cum[:HistogramBuckets] {
				// Skip interior empty prefixes? Prometheus requires monotone
				// buckets; emitting only buckets whose cumulative count
				// changes (plus +Inf) keeps the output compact and valid.
				if i > 0 && v == cum[i-1] {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketBound(i), v); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				name, count, name, sum, name, count); err != nil {
				return err
			}
		case s != nil:
			sn := s.Snapshot()
			for _, f := range statsFields(sn) {
				if _, err := fmt.Fprintf(w, "# HELP %s_%s %s: %s\n# TYPE %s_%s counter\n%s_%s %d\n",
					name, f.Name, help, f.Name, name, f.Name, name, f.Name, f.Value); err != nil {
					return err
				}
			}
			var anyLevel bool
			for _, v := range sn.WedgePrunesByLevel {
				if v != 0 {
					anyLevel = true
					break
				}
			}
			if anyLevel {
				if _, err := fmt.Fprintf(w, "# HELP %s_wedge_prunes_by_level Internal-wedge prunes by dendrogram depth (0 = root).\n# TYPE %s_wedge_prunes_by_level counter\n", name, name); err != nil {
					return err
				}
				for lvl, v := range sn.WedgePrunesByLevel {
					if v == 0 {
						continue
					}
					if _, err := fmt.Fprintf(w, "%s_wedge_prunes_by_level{level=\"%d\"} %d\n", name, lvl, v); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// Handler returns an http.Handler serving WriteMetrics — a Prometheus-text
// /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteMetrics(w)
	})
}

// expvarPublished guards against double expvar registration (expvar.Publish
// panics on duplicates).
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the registry under the given expvar name as a JSON
// map of metric name to value (counters), {sum, count} (histograms), or the
// full structured snapshot (SearchStats). Publishing the same name twice is
// a no-op.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any {
		out := map[string]any{}
		r.mu.Lock()
		defer r.mu.Unlock()
		for n, c := range r.counts {
			out[n] = c.Value()
		}
		for n, h := range r.hists {
			out[n] = map[string]int64{"sum": h.Sum(), "count": h.Count()}
		}
		for n, s := range r.stats {
			out[n] = s.Snapshot()
		}
		return out
	}))
}

// sortedStatNames is a test helper surface: the registered names in sorted
// order.
func (r *Registry) sortedStatNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}
