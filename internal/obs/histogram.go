package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistogramBuckets is the number of finite histogram buckets. Bucket i
// covers (2^(i-1), 2^i] (bucket 0 covers (-inf, 1]); one extra overflow
// bucket catches values above 2^(HistogramBuckets-1).
const HistogramBuckets = 40

// Histogram is a fixed-bucket power-of-two histogram safe for concurrent
// Observe. The zero value is ready to use; a nil *Histogram is a no-op sink.
// With 40 finite buckets it spans 1..2^39, enough for per-comparison
// num_steps on any series that fits in memory and for latencies up to ~9
// minutes in nanoseconds.
type Histogram struct {
	counts [HistogramBuckets + 1]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// bucketIndex maps a value to its bucket: the smallest i with v <= 2^i
// (clamped to the overflow bucket).
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1)) // ceil(log2(v))
	if i > HistogramBuckets {
		i = HistogramBuckets
	}
	return i
}

// BucketIndex returns the bucket index value v falls in — the inverse of
// BucketBound, shared with the ops rolling windows so every layer buckets
// identically.
func BucketIndex(v int64) int { return bucketIndex(v) }

// BucketBound returns the inclusive upper bound of bucket i (2^i); the
// overflow bucket has no finite bound and reports -1.
func BucketBound(i int) int64 {
	if i < 0 {
		return 0
	}
	if i >= HistogramBuckets {
		return -1
	}
	return int64(1) << uint(i)
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.count.Store(0)
}

// HistogramBucket is one non-empty bucket of a histogram snapshot.
// UpperBound -1 marks the overflow bucket.
type HistogramBucket struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending bound order.
func (h *Histogram) Buckets() []HistogramBucket {
	if h == nil {
		return nil
	}
	var out []HistogramBucket
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			out = append(out, HistogramBucket{UpperBound: BucketBound(i), Count: c})
		}
	}
	return out
}

// cumulative returns every bucket's cumulative count (Prometheus `le`
// semantics), including empty buckets, plus sum and count.
func (h *Histogram) cumulative() ([HistogramBuckets + 1]int64, int64, int64) {
	var cum [HistogramBuckets + 1]int64
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.sum.Load(), h.count.Load()
}
