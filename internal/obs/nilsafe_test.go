package obs

import (
	"reflect"
	"testing"
)

// assertNilCallSafe invokes every exported method of nilPtr's type on the nil
// receiver with zero-valued arguments and fails if any call panics — the
// runtime counterpart of the nilsink static check, enumerated by reflection
// so newly added methods are covered automatically.
func assertNilCallSafe(t *testing.T, nilPtr any) {
	t.Helper()
	v := reflect.ValueOf(nilPtr)
	if v.Kind() != reflect.Pointer || !v.IsNil() {
		t.Fatalf("assertNilCallSafe wants a typed nil pointer, got %T", nilPtr)
	}
	typ := v.Type()
	if typ.NumMethod() == 0 {
		t.Fatalf("%s has no exported methods; wrong type?", typ)
	}
	for i := 0; i < typ.NumMethod(); i++ {
		m := typ.Method(i)
		args := []reflect.Value{v}
		for j := 1; j < m.Func.Type().NumIn(); j++ {
			args = append(args, reflect.Zero(m.Func.Type().In(j)))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("(%s)(nil).%s panicked: %v", typ, m.Name, r)
				}
			}()
			m.Func.Call(args)
		}()
	}
}

func TestNilSearchStatsIsANoOpSink(t *testing.T) {
	assertNilCallSafe(t, (*SearchStats)(nil))
	var s *SearchStats
	s.AddComparison(3)
	s.CountWedgePrune(2, 5)
	if got := s.Snapshot(); !reflect.DeepEqual(got, Snapshot{}) {
		t.Fatalf("nil SearchStats.Snapshot() = %+v, want zero", got)
	}
	if got := s.Steps(); got != 0 {
		t.Fatalf("nil SearchStats.Steps() = %d, want 0", got)
	}
}

func TestNilHistogramIsANoOpSink(t *testing.T) {
	assertNilCallSafe(t, (*Histogram)(nil))
	var h *Histogram
	h.Observe(12)
	if got := h.Count(); got != 0 {
		t.Fatalf("nil Histogram.Count() = %d, want 0", got)
	}
	if got := h.Buckets(); got != nil {
		t.Fatalf("nil Histogram.Buckets() = %v, want nil", got)
	}
}

func TestNilCounterIsANoOpSink(t *testing.T) {
	assertNilCallSafe(t, (*Counter)(nil))
	var c *Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil Counter.Value() = %d, want 0", got)
	}
}

// TestZeroFuncTracerIsSafe exercises the value-receiver tracer adapter: a
// zero FuncTracer (all hook fields nil) must swallow every event.
func TestZeroFuncTracerIsSafe(t *testing.T) {
	var tr FuncTracer
	tr.OnWedgeVisit(1, 2, 3.5, true)
	tr.OnAbandon(4)
	tr.OnKChange(8, 16)
	tr.OnFetch(9)
}

// TestTraceHelpersWithNilTracer exercises the package-level guards: a nil
// Tracer interface must never be invoked.
func TestTraceHelpersWithNilTracer(t *testing.T) {
	TraceWedgeVisit(nil, 1, 2, 3.5, true)
	TraceAbandon(nil, 4)
	TraceKChange(nil, 8, 16)
	TraceFetch(nil, 9)
}
