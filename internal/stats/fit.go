package stats

import (
	"errors"
	"math"
)

// ErrBadFit reports that a regression was requested on unusable data.
var ErrBadFit = errors.New("stats: regression needs at least two distinct positive points")

// PowerLawFit fits y = a * x^b by least squares in log-log space and returns
// the exponent b and the coefficient a.
//
// The paper claims an empirical per-comparison complexity of O(n^1.06); this
// fit is how the harness verifies the analogous claim on our data
// (cmd/benchrun -fig exponent).
func PowerLawFit(xs, ys []float64) (exponent, coeff float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: mismatched sample lengths")
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	slope, intercept, err := LinearFit(lx, ly)
	if err != nil {
		return 0, 0, err
	}
	return slope, math.Exp(intercept), nil
}

// LinearFit fits y = slope*x + intercept by ordinary least squares.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, ErrBadFit
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, ErrBadFit
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
