package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestNilCounterSafe(t *testing.T) {
	var c *Counter
	c.Add(10)
	c.Reset()
	if got := c.Steps(); got != 0 {
		t.Fatalf("nil counter Steps() = %d, want 0", got)
	}
}

func TestCounterAccumulates(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(4)
	if got := c.Steps(); got != 7 {
		t.Fatalf("Steps() = %d, want 7", got)
	}
	c.Reset()
	if got := c.Steps(); got != 0 {
		t.Fatalf("Steps() after Reset = %d, want 0", got)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-3) > 1e-12 {
		t.Fatalf("fit = (%v, %v), want (2, 3)", slope, intercept)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Fatal("want error for single point")
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("want error for vertical data")
	}
	if _, _, err := LinearFit([]float64{1, 2, 3}, []float64{2, 3}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
}

func TestPowerLawFitExact(t *testing.T) {
	// y = 3 * x^1.5
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	exp, coeff, err := PowerLawFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp-1.5) > 1e-9 || math.Abs(coeff-3) > 1e-9 {
		t.Fatalf("fit = (%v, %v), want (1.5, 3)", exp, coeff)
	}
}

func TestPowerLawFitIgnoresNonPositive(t *testing.T) {
	xs := []float64{-1, 0, 1, 2, 4}
	ys := []float64{5, 5, 2, 4, 8} // positive part is y = 2x
	exp, coeff, err := PowerLawFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp-1) > 1e-9 || math.Abs(coeff-2) > 1e-9 {
		t.Fatalf("fit = (%v, %v), want (1, 2)", exp, coeff)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice Mean/StdDev should be 0")
	}
}

// Property: recovering slope/intercept from noiseless lines is exact for any
// finite parameters.
func TestLinearFitProperty(t *testing.T) {
	f := func(slope, intercept float64) bool {
		if math.IsNaN(slope) || math.IsInf(slope, 0) ||
			math.IsNaN(intercept) || math.IsInf(intercept, 0) {
			return true
		}
		// Keep magnitudes sane to avoid float overflow in the check.
		if math.Abs(slope) > 1e6 || math.Abs(intercept) > 1e6 {
			return true
		}
		xs := []float64{0, 1, 2, 3, 5, 8}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + intercept
		}
		gs, gi, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		scale := math.Max(1, math.Max(math.Abs(slope), math.Abs(intercept)))
		return math.Abs(gs-slope) < 1e-6*scale && math.Abs(gi-intercept) < 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterConcurrentAdd(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Steps(); got != 80000 {
		t.Fatalf("concurrent Steps() = %d, want 80000", got)
	}
}
