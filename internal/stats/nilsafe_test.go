package stats

import (
	"reflect"
	"testing"
)

// assertNilCallSafe invokes every exported method of nilPtr's type on the nil
// receiver with zero-valued arguments and fails if any call panics. It is the
// runtime counterpart of the nilsink static check: the analyzer proves a
// guard is written, this proves the guard works — and, because it enumerates
// methods by reflection, a newly added method is covered without touching the
// test.
func assertNilCallSafe(t *testing.T, nilPtr any) {
	t.Helper()
	v := reflect.ValueOf(nilPtr)
	if v.Kind() != reflect.Pointer || !v.IsNil() {
		t.Fatalf("assertNilCallSafe wants a typed nil pointer, got %T", nilPtr)
	}
	typ := v.Type()
	if typ.NumMethod() == 0 {
		t.Fatalf("%s has no exported methods; wrong type?", typ)
	}
	for i := 0; i < typ.NumMethod(); i++ {
		m := typ.Method(i)
		args := []reflect.Value{v}
		for j := 1; j < m.Func.Type().NumIn(); j++ {
			args = append(args, reflect.Zero(m.Func.Type().In(j)))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("(%s)(nil).%s panicked: %v", typ, m.Name, r)
				}
			}()
			m.Func.Call(args)
		}()
	}
}

func TestNilCounterIsANoOpSink(t *testing.T) {
	assertNilCallSafe(t, (*Counter)(nil))
	var c *Counter
	c.Add(7)
	c.Reset()
	if got := c.Steps(); got != 0 {
		t.Fatalf("nil Counter.Steps() = %d, want 0", got)
	}
}

func TestNilTallyIsANoOpSink(t *testing.T) {
	assertNilCallSafe(t, (*Tally)(nil))
	var tl *Tally
	tl.Add(7)
	tl.Reset()
	if got := tl.Steps(); got != 0 {
		t.Fatalf("nil Tally.Steps() = %d, want 0", got)
	}
}
