// Package stats provides the implementation-free cost accounting used by the
// paper's efficiency experiments, plus small statistical helpers for the
// experiment harness.
//
// The paper (Section 5.3) argues that comparing approaches by CPU time is
// subject to implementation bias, and instead counts "num_steps": the number
// of real-value subtractions performed by a distance or lower-bound kernel.
// Every kernel in this repository threads a *Counter through and adds the
// steps it performs, so experiments can report exactly the metric the paper
// reports.
package stats

// Counter accumulates num_steps as defined in the paper: one step per
// real-value subtraction performed by a distance or lower-bound kernel.
//
// A nil *Counter is valid everywhere and records nothing, so hot kernels can
// be called without accounting overhead mattering to the caller.
type Counter struct {
	steps int64
}

// Add records n additional steps. It is safe to call on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.steps += n
	}
}

// Steps reports the number of steps recorded so far. A nil receiver reports 0.
func (c *Counter) Steps() int64 {
	if c == nil {
		return 0
	}
	return c.steps
}

// Reset clears the counter. It is safe to call on a nil receiver.
func (c *Counter) Reset() {
	if c != nil {
		c.steps = 0
	}
}
