// Package stats provides the implementation-free cost accounting used by the
// paper's efficiency experiments, plus small statistical helpers for the
// experiment harness.
//
// The paper (Section 5.3) argues that comparing approaches by CPU time is
// subject to implementation bias, and instead counts "num_steps": the number
// of real-value subtractions performed by a distance or lower-bound kernel.
// Every kernel in this repository threads a *Counter through and adds the
// steps it performs, so experiments can report exactly the metric the paper
// reports.
package stats

import "sync/atomic"

// Counter accumulates num_steps as defined in the paper: one step per
// real-value subtraction performed by a distance or lower-bound kernel.
//
// A nil *Counter is valid everywhere and records nothing, so hot kernels can
// be called without accounting overhead mattering to the caller. Add is
// atomic, so parallel scans may share one counter without racing; hot loops
// that would be bound by the atomic keep a stack-local Counter and flush it
// once per call, as the kernels already do.
type Counter struct {
	steps atomic.Int64
}

// Add records n additional steps. It is safe to call on a nil receiver and
// safe for concurrent use.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.steps.Add(n)
	}
}

// Steps reports the number of steps recorded so far. A nil receiver reports 0.
func (c *Counter) Steps() int64 {
	if c == nil {
		return 0
	}
	return c.steps.Load()
}

// Reset clears the counter. It is safe to call on a nil receiver.
func (c *Counter) Reset() {
	if c != nil {
		c.steps.Store(0)
	}
}

// Tally is the single-goroutine scratch counterpart of Counter: a plain
// accumulator for the kernel-facing hot paths, where an atomic add per
// distance evaluation would dominate the cost of short early-abandoned
// kernels. A Tally must never be shared across goroutines; owners keep one
// on the stack and flush it into a Counter (or an obs record) once per
// comparison. A nil *Tally records nothing, mirroring Counter's contract.
type Tally struct {
	steps int64
}

// Add records n additional steps. Safe on a nil receiver.
func (t *Tally) Add(n int64) {
	if t != nil {
		t.steps += n
	}
}

// Steps reports the number of steps recorded so far. A nil receiver reports 0.
func (t *Tally) Steps() int64 {
	if t == nil {
		return 0
	}
	return t.steps
}

// Reset clears the tally. Safe on a nil receiver.
func (t *Tally) Reset() {
	if t != nil {
		t.steps = 0
	}
}
