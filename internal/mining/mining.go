// Package mining implements the shape data-mining subroutines the paper
// names as applications and future work (Sections 1 and 6): clustering,
// motif discovery (closest-pair search) and medoid selection, all under
// exact rotation-invariant distances and all accelerated by the same wedge
// machinery as 1-NN search.
package mining

import (
	"fmt"
	"math"

	"lbkeogh/internal/cluster"
	"lbkeogh/internal/core"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/wedge"
)

// Pair is a motif: the two database series with the smallest rotation-
// invariant distance, plus the alignment between them.
type Pair struct {
	I, J   int
	Dist   float64
	Member core.Member // rotation of series I that best matches series J
}

// ClosestPair finds the exact closest pair in db under the kernel with the
// given rotation options — the paper's "discover motifs" subroutine. It
// builds one rotation set per series and scans the remaining suffix with the
// global best-so-far as the abandoning threshold, so later rows get cheaper
// as the motif distance tightens.
func ClosestPair(db [][]float64, kern wedge.Kernel, opts core.Options, cnt *stats.Counter) (Pair, error) {
	if len(db) < 2 {
		return Pair{}, fmt.Errorf("mining: closest pair needs >= 2 series, got %d", len(db))
	}
	best := Pair{I: -1, J: -1, Dist: math.Inf(1)}
	for i := 0; i < len(db)-1; i++ {
		rs := core.NewRotationSet(db[i], opts, cnt)
		s := core.NewSearcher(rs, kern, core.Wedge, core.SearcherConfig{})
		for j := i + 1; j < len(db); j++ {
			m := s.MatchSeries(db[j], best.Dist, cnt)
			if m.Found() && m.Dist < best.Dist {
				best = Pair{I: i, J: j, Dist: m.Dist, Member: m.Member}
			}
		}
	}
	if best.I < 0 {
		// All pairwise distances were equal (e.g. identical series at
		// threshold 0): fall back to the first pair, exactly.
		rs := core.NewRotationSet(db[0], opts, cnt)
		s := core.NewSearcher(rs, kern, core.Wedge, core.SearcherConfig{})
		m := s.MatchSeries(db[1], -1, cnt)
		best = Pair{I: 0, J: 1, Dist: m.Dist, Member: m.Member}
	}
	return best, nil
}

// DistanceMatrix computes the full m×m exact rotation-invariant distance
// matrix (symmetric, zero diagonal). The rotation set of each row is built
// once and amortized over the whole row.
func DistanceMatrix(db [][]float64, kern wedge.Kernel, opts core.Options, cnt *stats.Counter) [][]float64 {
	m := len(db)
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		rs := core.NewRotationSet(db[i], opts, cnt)
		s := core.NewSearcher(rs, kern, core.Wedge, core.SearcherConfig{})
		for j := i + 1; j < m; j++ {
			match := s.MatchSeries(db[j], -1, cnt)
			out[i][j] = match.Dist
			out[j][i] = match.Dist
		}
	}
	return out
}

// Cluster runs group-average hierarchical clustering over the exact
// rotation-invariant distances and returns the dendrogram — the engine
// behind the paper's Figures 3, 16, 17 and 18.
func Cluster(db [][]float64, kern wedge.Kernel, opts core.Options, linkage cluster.Linkage, cnt *stats.Counter) *cluster.Dendrogram {
	d := DistanceMatrix(db, kern, opts, cnt)
	return cluster.Agglomerative(len(db), func(i, j int) float64 { return d[i][j] }, linkage)
}

// Medoid returns the index of the series with the smallest sum of exact
// rotation-invariant distances to all others — the cluster-representative
// primitive of k-medoids-style shape mining.
func Medoid(db [][]float64, kern wedge.Kernel, opts core.Options, cnt *stats.Counter) (int, error) {
	if len(db) == 0 {
		return -1, fmt.Errorf("mining: medoid of empty set")
	}
	d := DistanceMatrix(db, kern, opts, cnt)
	best, bestSum := -1, math.Inf(1)
	for i := range d {
		var sum float64
		for j := range d[i] {
			sum += d[i][j]
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	return best, nil
}

// Discord returns the index of the series with the LARGEST distance to its
// nearest neighbour — the anomaly-detection primitive used on star light
// curves ("finding outlier light curves", reference [29] of the paper).
func Discord(db [][]float64, kern wedge.Kernel, opts core.Options, cnt *stats.Counter) (int, float64, error) {
	if len(db) < 2 {
		return -1, 0, fmt.Errorf("mining: discord needs >= 2 series")
	}
	bestIdx, bestNN := -1, -1.0
	for i := range db {
		rs := core.NewRotationSet(db[i], opts, cnt)
		s := core.NewSearcher(rs, kern, core.Wedge, core.SearcherConfig{})
		nn := math.Inf(1)
		for j := range db {
			if j == i {
				continue
			}
			m := s.MatchSeries(db[j], nn, cnt)
			if m.Found() && m.Dist < nn {
				nn = m.Dist
			}
		}
		if nn > bestNN {
			bestIdx, bestNN = i, nn
		}
	}
	return bestIdx, bestNN, nil
}
