package mining

import (
	"math"
	"testing"

	"lbkeogh/internal/cluster"
	"lbkeogh/internal/core"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

func randomDB(seed int64, m, n int) [][]float64 {
	rng := ts.NewRand(seed)
	db := make([][]float64, m)
	for i := range db {
		db[i] = ts.ZNorm(ts.RandomWalk(rng, n))
	}
	return db
}

// bruteClosestPair is the quadratic, rotation-enumerating reference.
func bruteClosestPair(db [][]float64, kern wedge.Kernel) (int, int, float64) {
	bi, bj, best := -1, -1, math.Inf(1)
	for i := 0; i < len(db)-1; i++ {
		for j := i + 1; j < len(db); j++ {
			for s := 0; s < len(db[i]); s++ {
				d, _ := kern.Distance(db[j], ts.Rotate(db[i], s), -1, nil)
				if d < best {
					bi, bj, best = i, j, d
				}
			}
		}
	}
	return bi, bj, best
}

func TestClosestPairMatchesBrute(t *testing.T) {
	db := randomDB(1, 10, 24)
	// Plant a motif: a rotated noisy copy.
	rng := ts.NewRand(2)
	db[7] = ts.ZNorm(ts.AddNoise(rng, ts.Rotate(db[3], 9), 0.02))
	for _, kern := range []wedge.Kernel{wedge.ED{}, wedge.DTW{R: 2}} {
		got, err := ClosestPair(db, kern, core.DefaultOptions(), nil)
		if err != nil {
			t.Fatal(err)
		}
		wi, wj, wd := bruteClosestPair(db, kern)
		if got.I != wi || got.J != wj || math.Abs(got.Dist-wd) > 1e-9 {
			t.Fatalf("%s: ClosestPair (%d,%d,%v) != brute (%d,%d,%v)",
				kern.Name(), got.I, got.J, got.Dist, wi, wj, wd)
		}
	}
}

func TestClosestPairIdenticalSeries(t *testing.T) {
	db := randomDB(3, 4, 20)
	db[2] = ts.Clone(db[0])
	got, err := ClosestPair(db, wedge.ED{}, core.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist > 1e-12 || got.I != 0 || got.J != 2 {
		t.Fatalf("identical pair not found: %+v", got)
	}
}

func TestClosestPairAllIdentical(t *testing.T) {
	base := randomDB(4, 1, 16)[0]
	db := [][]float64{ts.Clone(base), ts.Clone(base), ts.Clone(base)}
	got, err := ClosestPair(db, wedge.ED{}, core.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist != 0 || got.I < 0 {
		t.Fatalf("degenerate all-identical case mishandled: %+v", got)
	}
}

func TestClosestPairErrors(t *testing.T) {
	if _, err := ClosestPair(nil, wedge.ED{}, core.DefaultOptions(), nil); err == nil {
		t.Fatal("want error for tiny input")
	}
}

func TestDistanceMatrixProperties(t *testing.T) {
	db := randomDB(5, 8, 20)
	d := DistanceMatrix(db, wedge.ED{}, core.DefaultOptions(), nil)
	for i := range d {
		if d[i][i] != 0 {
			t.Fatalf("diagonal not zero at %d: %v", i, d[i][i])
		}
		for j := range d {
			if d[i][j] != d[j][i] {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
			if i != j && d[i][j] <= 0 {
				t.Fatalf("off-diagonal not positive at (%d,%d): %v", i, j, d[i][j])
			}
		}
	}
	// Spot-check one entry against the Query machinery.
	rs := core.NewRotationSet(db[2], core.DefaultOptions(), nil)
	s := core.NewSearcher(rs, wedge.ED{}, core.BruteForce, core.SearcherConfig{})
	want := s.MatchSeries(db[5], -1, nil)
	if math.Abs(d[2][5]-want.Dist) > 1e-9 {
		t.Fatalf("matrix entry %v != direct %v", d[2][5], want.Dist)
	}
}

func TestClusterRecoversPlantedGroups(t *testing.T) {
	rng := ts.NewRand(6)
	baseA := ts.ZNorm(ts.RandomWalk(rng, 32))
	baseB := ts.ZNorm(ts.RandomWalk(rng, 32))
	var db [][]float64
	for i := 0; i < 4; i++ {
		db = append(db, ts.ZNorm(ts.AddNoise(rng, ts.Rotate(baseA, rng.Intn(32)), 0.05)))
	}
	for i := 0; i < 4; i++ {
		db = append(db, ts.ZNorm(ts.AddNoise(rng, ts.Rotate(baseB, rng.Intn(32)), 0.05)))
	}
	dend := Cluster(db, wedge.ED{}, core.DefaultOptions(), cluster.Average, nil)
	front := dend.Frontier(2)
	for _, id := range front {
		leaves := dend.Leaves(id)
		isA := leaves[0] < 4
		for _, l := range leaves {
			if (l < 4) != isA {
				t.Fatalf("K=2 cut mixes planted groups: %v", leaves)
			}
		}
	}
}

func TestMedoid(t *testing.T) {
	rng := ts.NewRand(7)
	base := ts.ZNorm(ts.RandomWalk(rng, 24))
	// One central instance and progressively noisier satellites; the medoid
	// must be the clean centre (index 0).
	db := [][]float64{ts.Clone(base)}
	for i := 1; i <= 5; i++ {
		db = append(db, ts.ZNorm(ts.AddNoise(rng, ts.Rotate(base, i*3), 0.1*float64(i))))
	}
	got, err := Medoid(db, wedge.ED{}, core.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("medoid = %d, want 0", got)
	}
	if _, err := Medoid(nil, wedge.ED{}, core.DefaultOptions(), nil); err == nil {
		t.Fatal("want error for empty set")
	}
}

func TestDiscordFindsAnomaly(t *testing.T) {
	rng := ts.NewRand(8)
	base := ts.ZNorm(ts.RandomWalk(rng, 32))
	var db [][]float64
	for i := 0; i < 6; i++ {
		db = append(db, ts.ZNorm(ts.AddNoise(rng, ts.Rotate(base, rng.Intn(32)), 0.05)))
	}
	// Inject one structurally different series.
	anomaly := make([]float64, 32)
	for i := range anomaly {
		anomaly[i] = math.Sin(7 * float64(i))
	}
	db = append(db, ts.ZNorm(anomaly))
	idx, nn, err := Discord(db, wedge.ED{}, core.DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 6 {
		t.Fatalf("discord = %d, want the injected anomaly 6", idx)
	}
	if nn <= 0 {
		t.Fatalf("discord NN distance = %v", nn)
	}
	if _, _, err := Discord(db[:1], wedge.ED{}, core.DefaultOptions(), nil); err == nil {
		t.Fatal("want error for single series")
	}
}
