package index

import (
	"lbkeogh/internal/rtree"
	"lbkeogh/internal/vptree"
)

// Health is the index's structural self-report: the sizes of the compressed
// representation plus the health of both index structures. It backs the
// /debug/index endpoint and the shapesearch -index-health flag.
type Health struct {
	// Objects is the collection size, Len the series length, D the retained
	// dimensionality per object.
	Objects int `json:"objects"`
	Len     int `json:"len"`
	D       int `json:"d"`
	// VPTree reports on the vantage-point tree over Fourier-magnitude
	// features (the Euclidean query path).
	VPTree vptree.Health `json:"vp_tree"`
	// RTree reports on the R-tree over PAA points (the DTW query path).
	RTree rtree.Health `json:"r_tree"`
}

// Health walks both index structures once and returns the combined report.
// Safe to call concurrently with queries (the trees are immutable after
// build).
func (ix *Index) Health() Health {
	return Health{
		Objects: ix.store.Len(),
		Len:     ix.n,
		D:       ix.d,
		VPTree:  ix.vpt.Inspect(),
		RTree:   ix.rt.Inspect(),
	}
}
