// Package index implements the disk-based exact rotation-invariant index of
// Section 4.2 (Table 7): a compressed, memory-resident representation of
// every database series — rotation-invariant Fourier magnitudes for
// Euclidean queries, PAA means for DTW queries — plus a simulated disk store
// that counts how many full series had to be fetched for exact verification.
//
// Disk accesses, not CPU, are the metric of Figure 24 ("the fraction of
// items that must be retrieved from disk"), so the store counts every fetch;
// an object is fetched at most once per query.
package index

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lbkeogh/internal/core"
	"lbkeogh/internal/fourier"
	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/trace"
	"lbkeogh/internal/paa"
	"lbkeogh/internal/rtree"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/vptree"
	"lbkeogh/internal/wedge"
)

// SeriesStore abstracts the disk-resident collection of full-resolution
// series: the in-memory simulation below for experiments, or a real
// file-backed store (internal/diskstore) for persistent indexes.
type SeriesStore interface {
	// Fetch retrieves one full series, counting the access.
	Fetch(id int) []float64
	// Len returns the collection size.
	Len() int
	// Reads reports fetches since the last ResetReads.
	Reads() int
	// ResetReads zeroes the access counter.
	ResetReads()
}

// Store simulates the disk-resident collection of full-resolution series.
type Store struct {
	series [][]float64
	reads  int
}

// NewStore wraps db as the on-disk collection.
func NewStore(db [][]float64) *Store { return &Store{series: db} }

// Fetch retrieves one full series, counting the disk access.
func (s *Store) Fetch(id int) []float64 {
	s.reads++
	return s.series[id]
}

// Reads reports the number of fetches since the last ResetReads.
func (s *Store) Reads() int { return s.reads }

// ResetReads zeroes the access counter.
func (s *Store) ResetReads() { s.reads = 0 }

// Len returns the collection size.
func (s *Store) Len() int { return len(s.series) }

// Index is the compressed in-memory representation plus the store.
type Index struct {
	store SeriesStore
	n     int // series length
	d     int // retained dimensionality D

	mags [][]float64 // Fourier magnitude features (rotation invariant)
	vpt  *vptree.Tree
	paas [][]float64 // PAA means for the DTW path
	rt   *rtree.Tree // R-tree over the PAA points (ref [37])
	segW []float64   // PAA segment widths (the bound weights)

	obs    *obs.SearchStats // nil: the no-op sink
	tracer obs.Tracer       // nil: untraced
	tlog   *trace.Log       // nil: no trace recording
	rec    *trace.Recorder  // the in-flight query's recorder, nil otherwise
}

// fetchHooker is implemented by stores that can report each record fetch as
// it happens, with its duration (internal/diskstore does).
type fetchHooker interface {
	SetFetchHook(func(id int, dur time.Duration))
}

// traceLinker is implemented by stores whose storage-plane observability
// keeps deferred fetch exemplars (internal/segment's DB with a storeobs
// recorder attached): trace IDs exist only once a trace is finished and
// retained, so the index hands the ID back after the fact and the store
// stamps its pending slow/cold fetch exemplars with it.
type traceLinker interface {
	LinkTrace(id int64)
}

// SetObserver installs an instrumentation record and tracer used by every
// subsequent query: index-level candidate/fetch counts, the verification
// searches' pruning breakdowns, and per-record disk-read events when the
// store supports them. Either argument may be nil. Not safe to call
// concurrently with queries.
func (ix *Index) SetObserver(st *obs.SearchStats, tr obs.Tracer) {
	ix.obs = st
	ix.tracer = tr
	ix.installFetchHook()
}

// SetTraceLog attaches (or with nil detaches) a trace log: every subsequent
// query records a span trace — index probe, per-candidate fetch, and the
// verification comparisons — which the log samples and screens for slow
// queries. Disk-read durations additionally feed the log's disk_read stage
// histogram when the store supports fetch hooks. Not safe to call
// concurrently with queries.
func (ix *Index) SetTraceLog(l *trace.Log) {
	ix.tlog = l
	ix.installFetchHook()
}

func (ix *Index) installFetchHook() {
	h, ok := ix.store.(fetchHooker)
	if !ok {
		return
	}
	if ix.obs == nil && ix.tracer == nil && ix.tlog == nil {
		h.SetFetchHook(nil)
		return
	}
	st, tlog := ix.obs, ix.tlog
	h.SetFetchHook(func(id int, dur time.Duration) {
		st.CountDiskRead()
		tlog.ObserveStage(trace.StageDiskRead, int64(dur))
	})
}

// Fetch retrieves one full series for verification, charging the access to
// the observer. Stores without a fetch hook have their reads charged here so
// DiskReads stays meaningful for the simulated store too.
func (ix *Index) Fetch(id int) []float64 {
	ix.obs.CountIndexCandidate()
	ix.obs.CountIndexFetch()
	obs.TraceFetch(ix.tracer, id)
	if _, hooked := ix.store.(fetchHooker); !hooked {
		ix.obs.CountDiskRead()
	}
	sp := ix.rec.Begin(trace.StageFetch, id)
	series := ix.store.Fetch(id)
	ix.rec.End(sp)
	return series
}

// startTrace begins one query's trace (a nil log yields a nil recorder, the
// no-op path) and snapshots the counters for the whole-trace delta.
func (ix *Index) startTrace(label string, searcher *core.Searcher) (*trace.Recorder, obs.Counts) {
	rec := ix.tlog.StartTrace(label)
	ix.rec = rec
	searcher.SetRecorder(rec)
	return rec, ix.obs.Counts()
}

// finishTrace completes the query's trace with the counter deltas as the
// whole-trace attributes, and — when the trace was retained and the store
// keeps deferred fetch exemplars — links the new trace ID to the query's
// slow/cold store fetches.
func (ix *Index) finishTrace(rec *trace.Recorder, before obs.Counts) {
	id := ix.tlog.Finish(rec, ix.obs.Counts().Sub(before))
	ix.rec = nil
	if id != 0 {
		if tl, ok := ix.store.(traceLinker); ok {
			tl.LinkTrace(id)
		}
	}
}

func (ix *Index) searcherConfig() core.SearcherConfig {
	return core.SearcherConfig{Obs: ix.obs, Tracer: ix.tracer}
}

// Build constructs the index over db with D retained dimensions per object
// (the paper sweeps D in {4, 8, 16, 32}). All series must share one length.
func Build(db [][]float64, D int) *Index {
	if len(db) == 0 {
		panic("index: empty database")
	}
	n := len(db[0])
	for i, s := range db {
		if len(s) != n {
			panic(fmt.Sprintf("index: series %d length %d != %d", i, len(s), n))
		}
	}
	if D < 1 {
		panic("index: D must be positive")
	}
	return buildFeatures(NewStore(db), n, D, db)
}

// BuildFromStore constructs the index over an already-stored collection of
// series of length n, streaming each record once to compute the compressed
// features. The feature-building pass is excluded from read accounting.
func BuildFromStore(store SeriesStore, n, D int) (*Index, error) {
	if store.Len() == 0 {
		return nil, fmt.Errorf("index: empty store")
	}
	if D < 1 {
		return nil, fmt.Errorf("index: D must be positive")
	}
	db := make([][]float64, store.Len())
	for i := range db {
		s := store.Fetch(i)
		if len(s) != n {
			return nil, fmt.Errorf("index: stored series %d length %d != %d", i, len(s), n)
		}
		db[i] = s
	}
	store.ResetReads()
	return buildFeatures(store, n, D, db), nil
}

func buildFeatures(store SeriesStore, n, D int, db [][]float64) *Index {
	ix := &Index{store: store, n: n, d: D}
	ix.mags = make([][]float64, len(db))
	ix.paas = make([][]float64, len(db))
	for i, s := range db {
		ix.mags[i] = fourier.Magnitudes(s, D)
		ix.paas[i] = paa.Reduce(s, D)
	}
	ix.buildTrees()
	return ix
}

// BuildFromColumns constructs the index over a store whose compressed
// feature columns already exist — the segment-store path, where FFT
// magnitudes and PAA means were computed once at ingest time and are mapped,
// not recomputed, at index build. mags and paas are row views (one D-length
// row per record, in global ID order) and must stay valid for the index's
// lifetime; the caller pins the backing snapshot.
func BuildFromColumns(store SeriesStore, n, D int, mags, paas [][]float64) (*Index, error) {
	if store.Len() == 0 {
		return nil, fmt.Errorf("index: empty store")
	}
	if D < 1 {
		return nil, fmt.Errorf("index: D must be positive")
	}
	if len(mags) != store.Len() || len(paas) != store.Len() {
		return nil, fmt.Errorf("index: %d/%d feature rows for %d records",
			len(mags), len(paas), store.Len())
	}
	for i := range mags {
		if len(mags[i]) != D || len(paas[i]) != D {
			return nil, fmt.Errorf("index: feature row %d has dims %d/%d, want %d",
				i, len(mags[i]), len(paas[i]), D)
		}
	}
	ix := &Index{store: store, n: n, d: D, mags: mags, paas: paas}
	ix.buildTrees()
	return ix, nil
}

// buildTrees raises the search structures over already-populated feature
// columns.
func (ix *Index) buildTrees() {
	ix.vpt = vptree.New(ix.mags, 16, 0x5eed)
	ix.rt = rtree.New(ix.paas, 16)
	bounds := paa.Bounds(ix.n, ix.d)
	ix.segW = make([]float64, len(bounds)-1)
	for s := range ix.segW {
		ix.segW[s] = float64(bounds[s+1] - bounds[s])
	}
}

// dtwBound returns the admissible R-tree bound function for a query wedge
// set: the minimum, over the K envelope boxes, of the weighted MINDIST
// between the box and a candidate MBR. For a single point it equals
// paa.LowerBound, so pruning is exactly as tight as the linear compressed
// scan while touching only O(log m) of the index.
func (ix *Index) dtwBound(boxes []paa.Box) func(lo, hi []float64) float64 {
	return func(lo, hi []float64) float64 {
		best := math.Inf(1)
		for _, bx := range boxes {
			if d := rtree.MinDistBox(bx.Lo, bx.Hi, lo, hi, ix.segW); d < best {
				best = d
			}
		}
		return best
	}
}

// Store exposes the backing store (for read accounting).
func (ix *Index) Store() SeriesStore { return ix.store }

// D returns the retained dimensionality.
func (ix *Index) D() int { return ix.d }

// Result is an exact nearest-neighbour answer.
type Result struct {
	Index  int
	Dist   float64
	Member core.Member
}

// SearchED answers an exact 1-NN rotation-invariant Euclidean query: the
// VP-tree over magnitude features enumerates candidates best-first; each
// candidate whose feature bound beats the best-so-far is fetched from disk
// and verified exactly with H-Merge. No false dismissals: the feature
// distance lower-bounds the rotation-invariant distance, and subtrees are
// pruned only on that bound.
func (ix *Index) SearchED(rs *core.RotationSet, cnt *stats.Counter) Result {
	qmag := fourier.Magnitudes(rs.Base(), ix.d)
	searcher := core.NewSearcher(rs, wedge.ED{}, core.Wedge, ix.searcherConfig())
	rec, before := ix.startTrace("index_search_ed", searcher)
	best := Result{Index: -1, Dist: math.Inf(1)}
	probe := rec.Begin(trace.StageVPProbe, -1)
	ix.vpt.Search(qmag, math.Inf(1), func(id int, fd, bsf float64) float64 {
		series := ix.Fetch(id)
		m := searcher.MatchSeries(series, bsf, cnt)
		if m.Found() && m.Dist < bsf {
			best = Result{Index: id, Dist: m.Dist, Member: m.Member}
			return m.Dist
		}
		return bsf
	})
	rec.End(probe)
	ix.finishTrace(rec, before)
	return best
}

// RangeED returns every database object whose exact rotation-invariant
// Euclidean distance to the query is strictly below r, in ascending index
// order. Only objects whose magnitude-feature bound is below r are fetched.
func (ix *Index) RangeED(rs *core.RotationSet, r float64, cnt *stats.Counter) []Result {
	qmag := fourier.Magnitudes(rs.Base(), ix.d)
	searcher := core.NewSearcher(rs, wedge.ED{}, core.Wedge, ix.searcherConfig())
	rec, before := ix.startTrace("index_range_ed", searcher)
	var out []Result
	probe := rec.Begin(trace.StageVPProbe, -1)
	ix.vpt.Search(qmag, r, func(id int, fd, bsf float64) float64 {
		series := ix.Fetch(id)
		m := searcher.MatchSeries(series, r, cnt)
		if m.Found() {
			out = append(out, Result{Index: id, Dist: m.Dist, Member: m.Member})
		}
		return bsf // fixed radius: never shrink
	})
	rec.End(probe)
	ix.finishTrace(rec, before)
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// RangeDTW is the DTW analogue of RangeED, using the PAA envelope bounds in
// index space.
func (ix *Index) RangeDTW(rs *core.RotationSet, R int, wedges int, r float64, cnt *stats.Counter) []Result {
	if wedges <= 0 {
		wedges = rs.Members()
	}
	if wedges > rs.Members() {
		wedges = rs.Members()
	}
	envs := rs.Tree().FrontierEnvelopes(wedges, R)
	boxes := make([]paa.Box, len(envs))
	for i, e := range envs {
		boxes[i] = paa.ReduceEnvelope(e, ix.d)
	}
	searcher := core.NewSearcher(rs, wedge.DTW{R: R}, core.Wedge, ix.searcherConfig())
	rec, before := ix.startTrace("index_range_dtw", searcher)
	var out []Result
	probe := rec.Begin(trace.StageRTreeProbe, -1)
	ix.rt.Search(ix.dtwBound(boxes), r, func(id int, lb, bsf float64) float64 {
		series := ix.Fetch(id)
		m := searcher.MatchSeries(series, r, cnt)
		if m.Found() {
			out = append(out, Result{Index: id, Dist: m.Dist, Member: m.Member})
		}
		return bsf // fixed radius
	})
	rec.End(probe)
	ix.finishTrace(rec, before)
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// SearchDTW answers an exact 1-NN rotation-invariant DTW query with band R.
// In index space each object's PAA means are lower-bounded against the K
// DTW-expanded envelopes of the query's wedge set; candidates are verified
// best-first until the smallest outstanding bound reaches the best-so-far.
// wedges selects K (clamped to the rotation count); 0 picks a default.
func (ix *Index) SearchDTW(rs *core.RotationSet, R int, wedges int, cnt *stats.Counter) Result {
	if wedges <= 0 {
		// Default: one envelope per rotation (classic per-rotation LB_Keogh
		// boxes). Index-space bounds are cheap relative to a disk fetch, and
		// fat merged wedges prune dramatically worse here — see the
		// BenchmarkAblationIndexWedges ablation.
		wedges = rs.Members()
	}
	if wedges > rs.Members() {
		wedges = rs.Members()
	}
	envs := rs.Tree().FrontierEnvelopes(wedges, R)
	boxes := make([]paa.Box, len(envs))
	for i, e := range envs {
		boxes[i] = paa.ReduceEnvelope(e, ix.d)
	}
	searcher := core.NewSearcher(rs, wedge.DTW{R: R}, core.Wedge, ix.searcherConfig())
	rec, before := ix.startTrace("index_search_dtw", searcher)
	best := Result{Index: -1, Dist: math.Inf(1)}
	probe := rec.Begin(trace.StageRTreeProbe, -1)
	ix.rt.Search(ix.dtwBound(boxes), math.Inf(1), func(id int, lb, bsf float64) float64 {
		series := ix.Fetch(id)
		m := searcher.MatchSeries(series, bsf, cnt)
		if m.Found() && m.Dist < bsf {
			best = Result{Index: id, Dist: m.Dist, Member: m.Member}
			return m.Dist
		}
		return bsf
	})
	rec.End(probe)
	ix.finishTrace(rec, before)
	return best
}
