package index

import (
	"math"
	"testing"

	"lbkeogh/internal/core"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

// syntheticDB builds a database with planted structure: a few base shapes,
// each instance a rotated, noisy copy.
func syntheticDB(seed int64, m, n int) [][]float64 {
	rng := ts.NewRand(seed)
	bases := make([][]float64, 5)
	for i := range bases {
		bases[i] = ts.ZNorm(ts.RandomWalk(rng, n))
	}
	db := make([][]float64, m)
	for i := range db {
		b := bases[i%len(bases)]
		db[i] = ts.ZNorm(ts.AddNoise(rng, ts.Rotate(b, rng.Intn(n)), 0.1))
	}
	return db
}

func linearScan(rs *core.RotationSet, db [][]float64, kern wedge.Kernel) (int, float64) {
	s := core.NewSearcher(rs, kern, core.BruteForce, core.SearcherConfig{})
	res := s.Scan(db, nil)
	return res.Index, res.Dist
}

func TestSearchEDExact(t *testing.T) {
	n := 64
	db := syntheticDB(1, 60, n)
	ix := Build(db, 8)
	rng := ts.NewRand(2)
	for trial := 0; trial < 8; trial++ {
		q := ts.ZNorm(ts.AddNoise(rng, db[trial*3], 0.05))
		rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
		wantIdx, wantDist := linearScan(rs, db, wedge.ED{})
		ix.Store().ResetReads()
		got := ix.SearchED(rs, nil)
		if got.Index != wantIdx || math.Abs(got.Dist-wantDist) > 1e-9 {
			t.Fatalf("trial %d: index (%d,%v) != linear (%d,%v)", trial, got.Index, got.Dist, wantIdx, wantDist)
		}
	}
}

func TestSearchEDPrunesReads(t *testing.T) {
	n := 64
	db := syntheticDB(3, 200, n)
	ix := Build(db, 16)
	rng := ts.NewRand(4)
	q := ts.ZNorm(ts.AddNoise(rng, db[0], 0.02))
	rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
	ix.Store().ResetReads()
	ix.SearchED(rs, nil)
	if r := ix.Store().Reads(); r >= 200 {
		t.Fatalf("index read everything: %d of 200", r)
	}
}

func TestSearchEDReadsShrinkWithD(t *testing.T) {
	n := 128
	db := syntheticDB(5, 300, n)
	rng := ts.NewRand(6)
	q := ts.ZNorm(ts.AddNoise(rng, db[10], 0.02))
	rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
	reads := map[int]int{}
	for _, D := range []int{4, 32} {
		ix := Build(db, D)
		ix.SearchED(rs, nil)
		reads[D] = ix.Store().Reads()
	}
	if reads[32] > reads[4] {
		t.Fatalf("higher D should not read more: D=4 %d, D=32 %d", reads[4], reads[32])
	}
}

func TestSearchDTWExact(t *testing.T) {
	n := 48
	db := syntheticDB(7, 40, n)
	rng := ts.NewRand(8)
	for trial := 0; trial < 5; trial++ {
		q := ts.ZNorm(ts.AddNoise(rng, db[trial*7], 0.05))
		rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
		R := 1 + trial
		wantIdx, wantDist := linearScan(rs, db, wedge.DTW{R: R})
		ix := Build(db, 8)
		got := ix.SearchDTW(rs, R, 8, nil)
		if got.Index != wantIdx || math.Abs(got.Dist-wantDist) > 1e-9 {
			t.Fatalf("trial %d R=%d: index (%d,%v) != linear (%d,%v)", trial, R, got.Index, got.Dist, wantIdx, wantDist)
		}
	}
}

func TestSearchDTWPrunesReads(t *testing.T) {
	n := 64
	db := syntheticDB(9, 150, n)
	ix := Build(db, 16)
	rng := ts.NewRand(10)
	q := ts.ZNorm(ts.AddNoise(rng, db[0], 0.02))
	rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
	ix.SearchDTW(rs, 3, 16, nil)
	if r := ix.Store().Reads(); r >= 150 {
		t.Fatalf("DTW index read everything: %d of 150", r)
	}
}

func TestSearchWithMirrorAndLimit(t *testing.T) {
	n := 40
	db := syntheticDB(11, 30, n)
	rng := ts.NewRand(12)
	q := ts.ZNorm(ts.AddNoise(rng, db[3], 0.05))
	for _, opts := range []core.Options{
		{Mirror: true, MaxShift: -1},
		{Mirror: false, MaxShift: 5},
	} {
		rs := core.NewRotationSet(q, opts, nil)
		wantIdx, wantDist := linearScan(rs, db, wedge.ED{})
		ix := Build(db, 8)
		got := ix.SearchED(rs, nil)
		if got.Index != wantIdx || math.Abs(got.Dist-wantDist) > 1e-9 {
			t.Fatalf("opts %+v: index (%d,%v) != linear (%d,%v)", opts, got.Index, got.Dist, wantIdx, wantDist)
		}
	}
}

// bruteRange is the reference: every item with exact RED < r.
func bruteRange(rs *core.RotationSet, db [][]float64, kern wedge.Kernel, r float64) map[int]float64 {
	s := core.NewSearcher(rs, kern, core.BruteForce, core.SearcherConfig{})
	out := map[int]float64{}
	for i, x := range db {
		m := s.MatchSeries(x, -1, nil)
		if m.Dist < r {
			out[i] = m.Dist
		}
	}
	return out
}

func TestRangeEDExact(t *testing.T) {
	n := 48
	db := syntheticDB(21, 80, n)
	ix := Build(db, 8)
	rng := ts.NewRand(22)
	q := ts.ZNorm(ts.AddNoise(rng, db[4], 0.05))
	rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
	// Radius chosen to include the planted class neighbours.
	s := core.NewSearcher(rs, wedge.ED{}, core.BruteForce, core.SearcherConfig{})
	nn := s.Scan(db, nil)
	r := nn.Dist * 2
	want := bruteRange(rs, db, wedge.ED{}, r)
	got := ix.RangeED(rs, r, nil)
	if len(got) != len(want) {
		t.Fatalf("range returned %d items, want %d", len(got), len(want))
	}
	for _, res := range got {
		wd, ok := want[res.Index]
		if !ok || math.Abs(res.Dist-wd) > 1e-9 {
			t.Fatalf("range item %d dist %v, want %v (ok=%v)", res.Index, res.Dist, wd, ok)
		}
	}
	// Fewer fetches than the database when the radius is selective.
	ix.Store().ResetReads()
	tight := ix.RangeED(rs, nn.Dist*1.05, nil)
	if len(tight) < 1 {
		t.Fatal("tight range should still contain the NN")
	}
	if ix.Store().Reads() >= len(db) {
		t.Fatalf("tight range fetched everything: %d", ix.Store().Reads())
	}
}

func TestRangeDTWExact(t *testing.T) {
	n := 40
	db := syntheticDB(23, 40, n)
	ix := Build(db, 10)
	rng := ts.NewRand(24)
	q := ts.ZNorm(ts.AddNoise(rng, db[7], 0.05))
	rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
	R := 3
	s := core.NewSearcher(rs, wedge.DTW{R: R}, core.BruteForce, core.SearcherConfig{})
	nn := s.Scan(db, nil)
	r := nn.Dist * 2
	want := bruteRange(rs, db, wedge.DTW{R: R}, r)
	got := ix.RangeDTW(rs, R, 0, r, nil)
	if len(got) != len(want) {
		t.Fatalf("DTW range returned %d items, want %d", len(got), len(want))
	}
	for _, res := range got {
		wd, ok := want[res.Index]
		if !ok || math.Abs(res.Dist-wd) > 1e-9 {
			t.Fatalf("DTW range item %d dist %v, want %v", res.Index, res.Dist, wd)
		}
	}
}

func TestStoreAccounting(t *testing.T) {
	s := NewStore([][]float64{{1}, {2}})
	if s.Len() != 2 || s.Reads() != 0 {
		t.Fatal("fresh store state wrong")
	}
	s.Fetch(0)
	s.Fetch(1)
	if s.Reads() != 2 {
		t.Fatalf("reads = %d, want 2", s.Reads())
	}
	s.ResetReads()
	if s.Reads() != 0 {
		t.Fatal("reset failed")
	}
}

func TestBuildFromStore(t *testing.T) {
	n := 32
	db := syntheticDB(31, 25, n)
	store := NewStore(db)
	ix, err := BuildFromStore(store, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ix.D() != 8 {
		t.Fatalf("D = %d", ix.D())
	}
	if store.Reads() != 0 {
		t.Fatalf("feature-building reads not reset: %d", store.Reads())
	}
	// Same answers as the direct build.
	direct := Build(db, 8)
	rng := ts.NewRand(32)
	q := ts.ZNorm(ts.AddNoise(rng, db[3], 0.05))
	rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
	a := ix.SearchED(rs, nil)
	b := direct.SearchED(rs, nil)
	if a.Index != b.Index || math.Abs(a.Dist-b.Dist) > 1e-12 {
		t.Fatalf("store-built index disagrees: (%d,%v) vs (%d,%v)", a.Index, a.Dist, b.Index, b.Dist)
	}
	// Validation.
	if _, err := BuildFromStore(NewStore(nil), n, 8); err == nil {
		t.Fatal("want error for empty store")
	}
	if _, err := BuildFromStore(store, n, 0); err == nil {
		t.Fatal("want error for D < 1")
	}
	if _, err := BuildFromStore(store, n+1, 8); err == nil {
		t.Fatal("want error for length mismatch")
	}
}

func TestBuildPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":  func() { Build(nil, 4) },
		"badD":   func() { Build([][]float64{{1, 2}}, 0) },
		"ragged": func() { Build([][]float64{{1, 2}, {1}}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSearchChargesSteps(t *testing.T) {
	db := syntheticDB(13, 50, 32)
	ix := Build(db, 8)
	rng := ts.NewRand(14)
	q := ts.ZNorm(ts.RandomWalk(rng, 32))
	rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
	var cnt stats.Counter
	ix.SearchED(rs, &cnt)
	if cnt.Steps() == 0 {
		t.Fatal("verification steps not charged")
	}
}
