// Package seriesio reads labelled series datasets in the CSV layout mkdata
// writes (label,v0,v1,...): one series per row, an integer class label in the
// first column. It is shared by the CLI tools (shapesearch, shapeserver) so
// they agree on the format and its error messages.
package seriesio

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// ReadCSV parses the file at path into parallel label and series slices. A
// dataset needs at least 2 rows of at least 2 values each; blank lines are
// skipped. Errors carry the path and 1-based line number.
func ReadCSV(path string) ([]int, [][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var labels []int
	var series [][]float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 3 {
			return nil, nil, fmt.Errorf("%s:%d: need label plus >= 2 values", path, line)
		}
		label, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, nil, fmt.Errorf("%s:%d: bad label: %v", path, line, err)
		}
		row := make([]float64, len(fields)-1)
		for i, fstr := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(fstr), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%s:%d: bad value %d: %v", path, line, i, err)
			}
			row[i] = v
		}
		labels = append(labels, label)
		series = append(series, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(series) < 2 {
		return nil, nil, fmt.Errorf("%s: need at least 2 rows", path)
	}
	return labels, series, nil
}
