package seriesio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "db.csv")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReadCSV(t *testing.T) {
	p := write(t, "1,0.5,1.5,2.5\n\n2,3,4,5\n")
	labels, series, err := ReadCSV(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 || labels[0] != 1 || labels[1] != 2 {
		t.Fatalf("labels = %v", labels)
	}
	if len(series) != 2 || len(series[0]) != 3 || series[0][1] != 1.5 || series[1][2] != 5 {
		t.Fatalf("series = %v", series)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		content, wantSub string
	}{
		{"1,2\n3,4,5,6\n", "need label plus"},
		{"x,1,2\n3,4,5\n", "bad label"},
		{"1,2,zzz\n3,4,5\n", "bad value"},
		{"1,2,3\n", "at least 2 rows"},
	}
	for _, c := range cases {
		if _, _, err := ReadCSV(write(t, c.content)); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("content %q: err = %v, want substring %q", c.content, err, c.wantSub)
		}
	}
	if _, _, err := ReadCSV(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("want error for missing file")
	}
}
