package classify

import (
	"testing"

	"lbkeogh/internal/core"
	"lbkeogh/internal/synth"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

func smallDataset(t *testing.T) ([][]float64, []int) {
	t.Helper()
	d := synth.MakeClassDataset("clf", 11, 3, 8, 64, false, synth.DefaultInstanceConfig())
	return d.Series, d.Labels
}

func TestLeaveOneOutLowErrorOnSeparableData(t *testing.T) {
	series, labels := smallDataset(t)
	errRate, errs := LeaveOneOut(series, labels, wedge.ED{}, core.DefaultOptions(), nil)
	if errRate > 0.25 {
		t.Fatalf("LOO error %v (%d errs) too high for separable synthetic classes", errRate, errs)
	}
	if float64(errs)/float64(len(series)) != errRate {
		t.Fatal("error count inconsistent with rate")
	}
}

func TestLeaveOneOutDTWNotWorseOnArticulatedData(t *testing.T) {
	cfg := synth.DefaultInstanceConfig()
	cfg.Articulation = 0.3 // strong articulation: DTW should shine
	d := synth.MakeClassDataset("art", 12, 3, 8, 64, false, cfg)
	edErr, _ := LeaveOneOut(d.Series, d.Labels, wedge.ED{}, core.DefaultOptions(), nil)
	dtwErr, _ := LeaveOneOut(d.Series, d.Labels, wedge.DTW{R: 3}, core.DefaultOptions(), nil)
	if dtwErr > edErr+1e-9 {
		t.Fatalf("DTW error %v worse than ED %v on articulated data", dtwErr, edErr)
	}
}

func TestNearestNeighbourExcludesSelf(t *testing.T) {
	series, _ := smallDataset(t)
	nn, dist := NearestNeighbour(series[0], series, 0, wedge.ED{}, core.DefaultOptions(), nil)
	if nn == 0 {
		t.Fatal("self must be excluded")
	}
	if dist <= 0 {
		t.Fatalf("distance to non-self should be positive, got %v", dist)
	}
	nnAll, distAll := NearestNeighbour(series[0], series, -1, wedge.ED{}, core.DefaultOptions(), nil)
	if nnAll != 0 || distAll > 1e-9 {
		t.Fatalf("without exclusion the self-match must win: (%d, %v)", nnAll, distAll)
	}
}

func TestBestWarpingWindowPrefersSmallOnTies(t *testing.T) {
	// A trivially separable dataset: every candidate R gives zero error, so
	// the smallest must win.
	rng := ts.NewRand(1)
	var series [][]float64
	var labels []int
	base0 := ts.ZNorm(ts.RandomWalk(rng, 32))
	base1 := make([]float64, 32)
	for i := range base1 {
		base1[i] = -base0[i]
	}
	for i := 0; i < 6; i++ {
		series = append(series, ts.AddNoise(rng, base0, 0.01))
		labels = append(labels, 0)
		series = append(series, ts.AddNoise(rng, base1, 0.01))
		labels = append(labels, 1)
	}
	r, e := BestWarpingWindow(series, labels, []int{0, 1, 2, 3}, core.DefaultOptions(), nil)
	if e != 0 {
		t.Fatalf("expected zero training error, got %v", e)
	}
	if r != 0 {
		t.Fatalf("tie should pick the smallest R, got %d", r)
	}
}

func TestSplitPreservesAll(t *testing.T) {
	series, labels := smallDataset(t)
	trS, trL, teS, teL := Split(series, labels)
	if len(trS)+len(teS) != len(series) || len(trL)+len(teL) != len(labels) {
		t.Fatal("split loses instances")
	}
	if len(trS) == 0 || len(teS) == 0 {
		t.Fatal("split degenerate")
	}
}

func TestEvaluateOnSplit(t *testing.T) {
	series, labels := smallDataset(t)
	trS, trL, teS, teL := Split(series, labels)
	err := Evaluate(trS, trL, teS, teL, wedge.ED{}, core.DefaultOptions(), nil)
	if err > 0.4 {
		t.Fatalf("holdout error %v too high", err)
	}
}

func TestLeaveOneOutAligned(t *testing.T) {
	// Aligned classification on pre-aligned data is exactly pairwise 1-NN;
	// rotating instances randomly must hurt it but not the rotation-
	// invariant version.
	cfg := synth.DefaultInstanceConfig()
	cfg.Rotate = false
	aligned := synth.MakeClassDataset("al", 31, 3, 8, 64, false, cfg)
	errAligned, _ := LeaveOneOutAligned(aligned.Series, aligned.Labels, wedge.ED{}, nil)

	cfg.Rotate = true
	rotated := synth.MakeClassDataset("al", 31, 3, 8, 64, false, cfg)
	errRotNaive, _ := LeaveOneOutAligned(rotated.Series, rotated.Labels, wedge.ED{}, nil)
	errRotInv, _ := LeaveOneOut(rotated.Series, rotated.Labels, wedge.ED{}, core.DefaultOptions(), nil)

	if errRotNaive < errRotInv {
		t.Fatalf("naive alignment (%v) should not beat rotation invariance (%v) on rotated data",
			errRotNaive, errRotInv)
	}
	if errAligned > errRotInv+0.2 {
		t.Fatalf("pre-aligned error %v should be comparable to rotation-invariant %v", errAligned, errRotInv)
	}
}

func TestTuneLCSS(t *testing.T) {
	series, labels := smallDataset(t)
	d, e, errRate := TuneLCSS(series, labels, []int{1, 3}, []float64{0.2, 0.6}, core.DefaultOptions(), nil)
	if d != 1 && d != 3 {
		t.Fatalf("tuned delta = %d", d)
	}
	if e != 0.2 && e != 0.6 {
		t.Fatalf("tuned eps = %v", e)
	}
	if errRate < 0 || errRate > 1 {
		t.Fatalf("tuned error = %v", errRate)
	}
	// The tuned setting must not be worse than any grid point.
	for _, dd := range []int{1, 3} {
		for _, ee := range []float64{0.2, 0.6} {
			got, _ := LeaveOneOut(series, labels, wedge.LCSS{Delta: dd, Eps: ee}, core.DefaultOptions(), nil)
			if got < errRate-1e-12 {
				t.Fatalf("grid point (%d,%v)=%v beats tuned %v", dd, ee, got, errRate)
			}
		}
	}
}

func TestTuneLCSSPanicsOnEmptyGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	TuneLCSS([][]float64{{1}, {2}}, []int{0, 1}, nil, nil, core.DefaultOptions(), nil)
}

func TestLeaveOneOutPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mismatch": func() { LeaveOneOut([][]float64{{1}}, []int{0, 1}, wedge.ED{}, core.DefaultOptions(), nil) },
		"tiny":     func() { LeaveOneOut([][]float64{{1}}, []int{0}, wedge.ED{}, core.DefaultOptions(), nil) },
		"noCands": func() {
			BestWarpingWindow([][]float64{{1}, {2}}, []int{0, 1}, nil, core.DefaultOptions(), nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}
