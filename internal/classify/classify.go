// Package classify implements the 1-nearest-neighbour classification
// protocol of the paper's effectiveness experiments (Section 5.1, Table 8):
// leave-one-out evaluation under rotation-invariant Euclidean distance and
// DTW, with the DTW warping-window width R learned from training data only.
package classify

import (
	"fmt"
	"math"

	"lbkeogh/internal/core"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/wedge"
)

// NearestNeighbour returns the index of the series in db (excluding
// `exclude`; pass -1 to exclude nothing) with the smallest rotation-invariant
// kernel distance to q, along with that distance.
func NearestNeighbour(q []float64, db [][]float64, exclude int, kern wedge.Kernel, opts core.Options, cnt *stats.Counter) (int, float64) {
	rs := core.NewRotationSet(q, opts, cnt)
	s := core.NewSearcher(rs, kern, core.Wedge, core.SearcherConfig{})
	best, bestIdx := math.Inf(1), -1
	for j, x := range db {
		if j == exclude {
			continue
		}
		m := s.MatchSeries(x, best, cnt)
		if m.Found() && m.Dist < best {
			best, bestIdx = m.Dist, j
		}
	}
	return bestIdx, best
}

// LeaveOneOut runs leave-one-out 1-NN classification over the labelled
// dataset and returns the error rate in [0, 1] and the raw error count —
// the protocol behind every row of Table 8.
func LeaveOneOut(series [][]float64, labels []int, kern wedge.Kernel, opts core.Options, cnt *stats.Counter) (float64, int) {
	if len(series) != len(labels) {
		panic(fmt.Sprintf("classify: %d series vs %d labels", len(series), len(labels)))
	}
	if len(series) < 2 {
		panic("classify: need at least two instances")
	}
	errs := 0
	for i, q := range series {
		nn, _ := NearestNeighbour(q, series, i, kern, opts, cnt)
		if labels[nn] != labels[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(series)), errs
}

// BestWarpingWindow selects the Sakoe-Chiba radius R in candidates that
// minimizes leave-one-out error on the given (training) data — the paper's
// "single parameter ... learned by looking only at the training data". Ties
// prefer the smaller R (cheaper and less prone to pathological warping).
func BestWarpingWindow(series [][]float64, labels []int, candidates []int, opts core.Options, cnt *stats.Counter) (bestR int, bestErr float64) {
	if len(candidates) == 0 {
		panic("classify: no warping-window candidates")
	}
	bestR, bestErr = candidates[0], math.Inf(1)
	for _, r := range candidates {
		e, _ := LeaveOneOut(series, labels, wedge.DTW{R: r}, opts, cnt)
		if e < bestErr {
			bestR, bestErr = r, e
		}
	}
	return bestR, bestErr
}

// LeaveOneOutAligned runs leave-one-out 1-NN classification with NO rotation
// search: every pair is compared at the alignment it is stored in. Combined
// with a landmarking pre-pass (e.g. ts.AlignToMax), this is the paper's
// landmark baseline — the Yoga experiment of Section 5.1, where replacing
// human-annotated landmarks with exact rotation invariance cut the error by
// a factor of three.
func LeaveOneOutAligned(series [][]float64, labels []int, kern wedge.Kernel, cnt *stats.Counter) (float64, int) {
	if len(series) != len(labels) {
		panic(fmt.Sprintf("classify: %d series vs %d labels", len(series), len(labels)))
	}
	if len(series) < 2 {
		panic("classify: need at least two instances")
	}
	errs := 0
	var local stats.Tally
	for i, q := range series {
		best, bestJ := math.Inf(1), -1
		for j, x := range series {
			if j == i {
				continue
			}
			d, abandoned := kern.Distance(q, x, best, &local)
			if !abandoned && d < best {
				best, bestJ = d, j
			}
		}
		if labels[bestJ] != labels[i] {
			errs++
		}
	}
	cnt.Add(local.Steps())
	return float64(errs) / float64(len(series)), errs
}

// TuneLCSS grid-searches LCSS's two parameters (matching window delta and
// threshold eps) by leave-one-out error on training data — the automation
// the paper leaves as future work ("Automatically choosing the correct
// parameters for LCSS is a matter for future research"). Ties prefer the
// smaller delta, then the smaller eps.
func TuneLCSS(series [][]float64, labels []int, deltas []int, epss []float64, opts core.Options, cnt *stats.Counter) (bestDelta int, bestEps, bestErr float64) {
	if len(deltas) == 0 || len(epss) == 0 {
		panic("classify: empty LCSS parameter grid")
	}
	bestDelta, bestEps, bestErr = deltas[0], epss[0], math.Inf(1)
	for _, d := range deltas {
		for _, e := range epss {
			err, _ := LeaveOneOut(series, labels, wedge.LCSS{Delta: d, Eps: e}, opts, cnt)
			if err < bestErr {
				bestDelta, bestEps, bestErr = d, e, err
			}
		}
	}
	return bestDelta, bestEps, bestErr
}

// Split partitions a labelled dataset into train and test halves
// deterministically (even indices train, odd test), preserving class balance
// for round-robin-labelled datasets.
func Split(series [][]float64, labels []int) (trainS [][]float64, trainL []int, testS [][]float64, testL []int) {
	for i := range series {
		if i%2 == 0 {
			trainS = append(trainS, series[i])
			trainL = append(trainL, labels[i])
		} else {
			testS = append(testS, series[i])
			testL = append(testL, labels[i])
		}
	}
	return
}

// Evaluate classifies every test instance against the training set and
// returns the error rate.
func Evaluate(trainS [][]float64, trainL []int, testS [][]float64, testL []int, kern wedge.Kernel, opts core.Options, cnt *stats.Counter) float64 {
	errs := 0
	for i, q := range testS {
		nn, _ := NearestNeighbour(q, trainS, -1, kern, opts, cnt)
		if trainL[nn] != testL[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(testS))
}
