package dist

import (
	"math"

	"lbkeogh/internal/stats"
)

// DTW returns the Sakoe-Chiba-banded Dynamic Time Warping distance between q
// and c (equal length n). The warping path may deviate at most R cells from
// the diagonal (Section 4.3, Figure 12). R < 0 or R >= n-1 means an
// unconstrained path. The result is the square root of the accumulated
// squared point costs, so DTW with R = 0 equals the Euclidean distance.
//
// The implementation is iterative (not recursive), which is what makes early
// abandoning possible in DTWEA; the paper notes (footnote 2) that the elegant
// recursive form cannot abandon early.
func DTW(q, c []float64, R int, cnt *stats.Tally) float64 {
	d, _ := dtwBanded(q, c, R, -1, cnt)
	return d
}

// DTWEA is the early-abandoning form of DTW: as soon as every cell of a DP
// row exceeds r², no warping path can finish below r, so the computation
// abandons and returns (Inf, true). r < 0 disables abandoning.
func DTWEA(q, c []float64, R int, r float64, cnt *stats.Tally) (float64, bool) {
	return dtwBanded(q, c, R, r, cnt)
}

// dtwBanded is the shared rolling-row DP behind DTW and DTWEA.
//
//lbkeogh:hotpath
func dtwBanded(q, c []float64, R int, r float64, cnt *stats.Tally) (float64, bool) {
	checkSameLength(q, c)
	n := len(q)
	if n == 0 {
		return 0, false
	}
	if R < 0 || R > n-1 {
		R = n - 1
	}
	r2 := math.Inf(1)
	if r >= 0 {
		r2 = r * r
	}

	// Two rolling rows over the banded DP matrix, borrowed from the shared
	// pool so the kernel allocates nothing per call. Cells outside the band
	// are +Inf. Row i covers columns [i-R, i+R] ∩ [0, n-1].
	rows := borrowDTWRows(n)
	defer rows.release()
	prev, curr := rows.prev, rows.curr
	for j := range prev {
		prev[j] = math.Inf(1)
	}

	var steps int64
	for i := 0; i < n; i++ {
		lo := i - R
		if lo < 0 {
			lo = 0
		}
		hi := i + R
		if hi > n-1 {
			hi = n - 1
		}
		rowMin := math.Inf(1)
		for j := range curr {
			curr[j] = math.Inf(1)
		}
		for j := lo; j <= hi; j++ {
			d := q[i] - c[j]
			cost := d * d
			steps++
			var best float64
			switch {
			case i == 0 && j == 0:
				best = 0
			case i == 0:
				best = curr[j-1]
			case j == 0:
				best = prev[j]
			default:
				best = prev[j]
				if prev[j-1] < best {
					best = prev[j-1]
				}
				if curr[j-1] < best {
					best = curr[j-1]
				}
			}
			curr[j] = cost + best
			if curr[j] < rowMin {
				rowMin = curr[j]
			}
		}
		if rowMin > r2 {
			cnt.Add(steps)
			return Inf, true
		}
		prev, curr = curr, prev
	}
	cnt.Add(steps)
	total := prev[n-1]
	if total > r2 {
		return Inf, true
	}
	return math.Sqrt(total), false
}

// DTWPath returns the DTW distance along with the optimal warping path as
// (i, j) index pairs from (0,0) to (n-1,n-1). It materializes the full banded
// matrix, so it is intended for analysis and visualization (e.g. the
// alignment plots of Figure 11), not for the search hot path.
func DTWPath(q, c []float64, R int) (float64, [][2]int) {
	checkSameLength(q, c)
	n := len(q)
	if n == 0 {
		return 0, nil
	}
	if R < 0 || R > n-1 {
		R = n - 1
	}
	dp := make([][]float64, n)
	for i := range dp {
		dp[i] = make([]float64, n)
		for j := range dp[i] {
			dp[i][j] = math.Inf(1)
		}
	}
	for i := 0; i < n; i++ {
		lo, hi := i-R, i+R
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		for j := lo; j <= hi; j++ {
			d := q[i] - c[j]
			cost := d * d
			var best float64
			switch {
			case i == 0 && j == 0:
				best = 0
			case i == 0:
				best = dp[0][j-1]
			case j == 0:
				best = dp[i-1][0]
			default:
				best = math.Min(dp[i-1][j], math.Min(dp[i][j-1], dp[i-1][j-1]))
			}
			dp[i][j] = cost + best
		}
	}
	// Backtrack.
	var path [][2]int
	i, j := n-1, n-1
	for {
		path = append(path, [2]int{i, j})
		if i == 0 && j == 0 {
			break
		}
		bi, bj := i, j
		best := math.Inf(1)
		if i > 0 && dp[i-1][j] < best {
			best, bi, bj = dp[i-1][j], i-1, j
		}
		if j > 0 && dp[i][j-1] < best {
			best, bi, bj = dp[i][j-1], i, j-1
		}
		if i > 0 && j > 0 && dp[i-1][j-1] <= best {
			bi, bj = i-1, j-1
		}
		i, j = bi, bj
	}
	// Reverse into forward order.
	for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
		path[a], path[b] = path[b], path[a]
	}
	return math.Sqrt(dp[n-1][n-1]), path
}
