package dist

import (
	"lbkeogh/internal/stats"
)

// LCSS returns the Longest Common SubSequence similarity between q and c
// (equal length n): the maximum number of point pairs (i, j) that can be
// matched in order, where a pair matches if |q[i]-c[j]| <= eps and
// |i-j| <= delta. Unlike DTW, unmatched points are simply skipped, which is
// what makes LCSS robust to occlusions and missing parts (Figure 14).
//
// delta < 0 means an unconstrained matching window. The result is an integer
// in [0, n] returned as int; use LCSSDist for the normalized distance form.
//
//lbkeogh:hotpath
func LCSS(q, c []float64, delta int, eps float64, cnt *stats.Tally) int {
	checkSameLength(q, c)
	n := len(q)
	if n == 0 {
		return 0
	}
	if delta < 0 || delta > n-1 {
		delta = n - 1
	}
	// Rolling rows from the shared pool: prev must start all-zero (row 0 of
	// the DP), curr is rewritten for every row.
	rows := borrowLCSSRows(n + 1)
	defer rows.release()
	prev, curr := rows.prev, rows.curr
	for j := range prev {
		prev[j] = 0
	}
	var steps int64
	for i := 1; i <= n; i++ {
		lo := i - delta
		if lo < 1 {
			lo = 1
		}
		hi := i + delta
		if hi > n {
			hi = n
		}
		for j := range curr {
			curr[j] = 0
		}
		// Carry the best-so-far from the left edge of the band so the
		// recurrence max(curr[j-1], ...) still sees matches made at smaller j
		// in earlier rows.
		if lo > 1 {
			curr[lo-1] = prev[lo-1]
		}
		for j := lo; j <= hi; j++ {
			steps++
			d := q[i-1] - c[j-1]
			if d < 0 {
				d = -d
			}
			if d <= eps {
				curr[j] = prev[j-1] + 1
			} else {
				curr[j] = prev[j]
				if curr[j-1] > curr[j] {
					curr[j] = curr[j-1]
				}
			}
		}
		// Propagate to the right of the band so prev[j] lookups next row see
		// the running maximum.
		for j := hi + 1; j <= n; j++ {
			curr[j] = curr[hi]
		}
		prev, curr = curr, prev
	}
	cnt.Add(steps)
	return prev[n]
}

// LCSSDist converts LCSS similarity to a distance in [0, 1]:
// 1 - LCSS(q,c)/n. Zero means the sequences match everywhere within eps.
func LCSSDist(q, c []float64, delta int, eps float64, cnt *stats.Tally) float64 {
	n := len(q)
	if n == 0 {
		return 0
	}
	sim := LCSS(q, c, delta, eps, cnt)
	return 1 - float64(sim)/float64(n)
}
