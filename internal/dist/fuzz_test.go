package dist

import (
	"math"
	"testing"
)

// bytesToSeries decodes fuzz input into two equal-length series of small,
// finite values.
func bytesToSeries(data []byte) (q, c []float64) {
	if len(data) < 8 {
		return nil, nil
	}
	n := len(data) / 2
	q = make([]float64, n)
	c = make([]float64, n)
	for i := 0; i < n; i++ {
		q[i] = (float64(data[i]) - 128) / 32
		c[i] = (float64(data[n+i]) - 128) / 32
	}
	return q, c
}

// FuzzDTW checks metric-flavoured invariants of the banded DTW kernel on
// arbitrary inputs: non-negative, zero on identity, symmetric, bounded above
// by the Euclidean distance, finite.
func FuzzDTW(f *testing.F) {
	f.Add([]byte("hello world hello world!"), uint8(2))
	f.Add(make([]byte, 40), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, rSeed uint8) {
		q, c := bytesToSeries(data)
		if q == nil {
			return
		}
		R := int(rSeed) % len(q)
		d := DTW(q, c, R, nil)
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("DTW = %v", d)
		}
		if rev := DTW(c, q, R, nil); math.Abs(d-rev) > 1e-9 {
			t.Fatalf("DTW asymmetric: %v vs %v", d, rev)
		}
		if self := DTW(q, q, R, nil); self != 0 { //lint:ignore floateq self-distance is exactly 0 in IEEE arithmetic
			t.Fatalf("DTW(q,q) = %v", self)
		}
		if ed := Euclidean(q, c, nil); d > ed+1e-9 {
			t.Fatalf("DTW %v exceeds ED %v", d, ed)
		}
	})
}

// FuzzLCSS checks the LCSS similarity stays within [0, n], is symmetric and
// maximal on identity.
func FuzzLCSS(f *testing.F) {
	f.Add([]byte("abcdefghijklmnopqrstuvwx"), uint8(3), uint8(32))
	f.Fuzz(func(t *testing.T, data []byte, dSeed, eSeed uint8) {
		q, c := bytesToSeries(data)
		if q == nil {
			return
		}
		delta := int(dSeed) % len(q)
		eps := float64(eSeed) / 64
		sim := LCSS(q, c, delta, eps, nil)
		if sim < 0 || sim > len(q) {
			t.Fatalf("LCSS = %d outside [0,%d]", sim, len(q))
		}
		if rev := LCSS(c, q, delta, eps, nil); rev != sim {
			t.Fatalf("LCSS asymmetric: %d vs %d", sim, rev)
		}
		if self := LCSS(q, q, delta, eps, nil); self != len(q) {
			t.Fatalf("LCSS(q,q) = %d, want %d", self, len(q))
		}
	})
}
