package dist

// Cross-checks against naive textbook reference implementations: the banded,
// rolling-array, early-abandoning production kernels must agree exactly with
// simple full-matrix dynamic programs on random inputs.

import (
	"math"
	"testing"
	"testing/quick"

	"lbkeogh/internal/ts"
)

// naiveDTW is the O(n²)-memory textbook DTW with a Sakoe-Chiba band.
func naiveDTW(q, c []float64, R int) float64 {
	n := len(q)
	if n == 0 {
		return 0
	}
	if R < 0 || R > n-1 {
		R = n - 1
	}
	dp := make([][]float64, n)
	for i := range dp {
		dp[i] = make([]float64, n)
		for j := range dp[i] {
			dp[i][j] = math.Inf(1)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j < i-R || j > i+R {
				continue
			}
			d := q[i] - c[j]
			cost := d * d
			switch {
			case i == 0 && j == 0:
				dp[i][j] = cost
			case i == 0:
				dp[i][j] = cost + dp[i][j-1]
			case j == 0:
				dp[i][j] = cost + dp[i-1][j]
			default:
				dp[i][j] = cost + math.Min(dp[i-1][j], math.Min(dp[i][j-1], dp[i-1][j-1]))
			}
		}
	}
	return math.Sqrt(dp[n-1][n-1])
}

// naiveLCSS is the O(n²)-memory textbook LCSS with a matching window.
func naiveLCSS(q, c []float64, delta int, eps float64) int {
	n := len(q)
	if n == 0 {
		return 0
	}
	if delta < 0 || delta > n-1 {
		delta = n - 1
	}
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, n+1)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			best := dp[i-1][j]
			if dp[i][j-1] > best {
				best = dp[i][j-1]
			}
			if abs(i-j) <= delta && math.Abs(q[i-1]-c[j-1]) <= eps {
				if dp[i-1][j-1]+1 > best {
					best = dp[i-1][j-1] + 1
				}
			}
			dp[i][j] = best
		}
	}
	return dp[n][n]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestDTWMatchesNaiveReference(t *testing.T) {
	rng := ts.NewRand(100)
	for trial := 0; trial < 30; trial++ {
		n := 5 + trial
		q := ts.RandomSeries(rng, n)
		c := ts.RandomSeries(rng, n)
		for _, R := range []int{0, 1, 2, 5, n - 1, -1} {
			got := DTW(q, c, R, nil)
			want := naiveDTW(q, c, R)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("n=%d R=%d: banded %v != naive %v", n, R, got, want)
			}
		}
	}
}

func TestDTWNaiveProperty(t *testing.T) {
	rng := ts.NewRand(101)
	f := func(rSeed uint8) bool {
		n := 20
		q := ts.RandomWalk(rng, n)
		c := ts.RandomWalk(rng, n)
		R := int(rSeed) % n
		return math.Abs(DTW(q, c, R, nil)-naiveDTW(q, c, R)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLCSSMatchesNaiveReference(t *testing.T) {
	rng := ts.NewRand(102)
	for trial := 0; trial < 30; trial++ {
		n := 4 + trial
		q := ts.RandomSeries(rng, n)
		c := ts.RandomSeries(rng, n)
		for _, delta := range []int{0, 1, 3, n - 1, -1} {
			for _, eps := range []float64{0.1, 0.5, 1.5} {
				got := LCSS(q, c, delta, eps, nil)
				want := naiveLCSS(q, c, delta, eps)
				if got != want {
					t.Fatalf("n=%d delta=%d eps=%v: banded %d != naive %d", n, delta, eps, got, want)
				}
			}
		}
	}
}

func TestLCSSNaiveProperty(t *testing.T) {
	rng := ts.NewRand(103)
	f := func(dSeed, eSeed uint8) bool {
		n := 18
		q := ts.RandomWalk(rng, n)
		c := ts.RandomWalk(rng, n)
		delta := int(dSeed) % n
		eps := float64(eSeed) / 100
		return LCSS(q, c, delta, eps, nil) == naiveLCSS(q, c, delta, eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Early abandoning must never change the result when it does not trigger:
// threshold infinitesimally above the true distance.
func TestEAEquivalenceProperty(t *testing.T) {
	rng := ts.NewRand(104)
	f := func(rSeed uint8) bool {
		n := 24
		q := ts.RandomWalk(rng, n)
		c := ts.RandomWalk(rng, n)
		R := int(rSeed) % 6
		full := DTW(q, c, R, nil)
		got, abandoned := DTWEA(q, c, R, full*(1+1e-9)+1e-9, nil)
		if abandoned || math.Abs(got-full) > 1e-9 {
			return false
		}
		fullED := Euclidean(q, c, nil)
		gotED, abandonedED := EuclideanEA(q, c, fullED*(1+1e-9)+1e-9, nil)
		return !abandonedED && math.Abs(gotED-fullED) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Distances must be finite on finite input (no NaN/Inf leaks).
func TestNoNaNLeaks(t *testing.T) {
	rng := ts.NewRand(105)
	for trial := 0; trial < 20; trial++ {
		n := 16
		q := ts.RandomSeries(rng, n)
		c := ts.RandomSeries(rng, n)
		for _, v := range []float64{
			Euclidean(q, c, nil),
			DTW(q, c, 3, nil),
			LCSSDist(q, c, 3, 0.5, nil),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite distance %v", v)
			}
		}
	}
}
