package dist

import "sync"

// Pooled DP-row scratch for the DTW and LCSS kernels. The two rolling rows
// were the kernels' only per-call heap allocations; at thousands of kernel
// invocations per rotation-invariant comparison, pooling them keeps the
// //lbkeogh:hotpath bodies allocation-free on the steady state. Each borrow
// reslices to the requested length and grows (amortized) only when a longer
// series arrives.

type dtwRows struct {
	prev, curr []float64
}

var dtwRowsPool = sync.Pool{New: func() any { return new(dtwRows) }}

// borrowDTWRows returns two float64 rows of length n. Contents are
// unspecified; dtwBanded fully initializes both before reading.
func borrowDTWRows(n int) *dtwRows {
	r := dtwRowsPool.Get().(*dtwRows)
	if cap(r.prev) < n {
		r.prev = make([]float64, n)
		r.curr = make([]float64, n)
	}
	r.prev = r.prev[:n]
	r.curr = r.curr[:n]
	return r
}

func (r *dtwRows) release() { dtwRowsPool.Put(r) }

type lcssRows struct {
	prev, curr []int
}

var lcssRowsPool = sync.Pool{New: func() any { return new(lcssRows) }}

// borrowLCSSRows returns two int rows of length n. Contents are
// unspecified; LCSS zeroes prev before the first row and rewrites curr
// per row.
func borrowLCSSRows(n int) *lcssRows {
	r := lcssRowsPool.Get().(*lcssRows)
	if cap(r.prev) < n {
		r.prev = make([]int, n)
		r.curr = make([]int, n)
	}
	r.prev = r.prev[:n]
	r.curr = r.curr[:n]
	return r
}

func (r *lcssRows) release() { lcssRowsPool.Put(r) }
