// Package dist implements the pairwise distance kernels of the paper:
// Euclidean distance with early abandoning (Table 1), Sakoe-Chiba-banded
// Dynamic Time Warping with early abandoning (Section 4.3, Figure 12), and
// Longest Common SubSequence similarity (Section 4.3).
//
// Every kernel threads a *stats.Tally and charges it one step per
// real-value subtraction performed, which is exactly the implementation-free
// cost metric ("num_steps") the paper's efficiency experiments report.
//
// All kernels operate on squared accumulations internally and return
// distances in "root" units, so Euclidean and DTW results are directly
// comparable (DTW with R=0 equals Euclidean distance exactly).
package dist

import (
	"fmt"
	"math"

	"lbkeogh/internal/stats"
)

// Inf is the distance value returned by early-abandoned computations,
// mirroring the paper's pseudocode which returns "infinity" to signal an
// abandonment.
var Inf = math.Inf(1)

func checkSameLength(q, c []float64) {
	if len(q) != len(c) {
		panic(fmt.Sprintf("dist: series length mismatch %d vs %d", len(q), len(c)))
	}
}

// Euclidean returns the Euclidean distance between q and c, which must have
// equal length. One step per sample is charged to cnt.
//
//lbkeogh:hotpath
func Euclidean(q, c []float64, cnt *stats.Tally) float64 {
	checkSameLength(q, c)
	var acc float64
	for i := range q {
		d := q[i] - c[i]
		acc += d * d
	}
	cnt.Add(int64(len(q)))
	return math.Sqrt(acc)
}

// EuclideanEA is EA_Euclidean_Dist from Table 1 of the paper: it computes the
// Euclidean distance between q and c but abandons as soon as the accumulated
// squared error exceeds r². On abandonment it returns (Inf, true); otherwise
// (the exact distance, false). Steps are charged for exactly the samples
// examined, so cnt reproduces the paper's num_steps bookkeeping.
//
// r < 0 is treated as "no threshold" (never abandons). r == 0 abandons on the
// first nonzero discrepancy, matching a strict best-so-far of zero.
//
//lbkeogh:hotpath
func EuclideanEA(q, c []float64, r float64, cnt *stats.Tally) (float64, bool) {
	checkSameLength(q, c)
	if r < 0 {
		return Euclidean(q, c, cnt), false
	}
	r2 := r * r
	var acc float64
	for i := range q {
		d := q[i] - c[i]
		acc += d * d
		if acc > r2 {
			cnt.Add(int64(i + 1))
			return Inf, true
		}
	}
	cnt.Add(int64(len(q)))
	return math.Sqrt(acc), false
}

// SquaredEuclidean returns the squared Euclidean distance (no square root).
// Used by clustering, where only relative order matters.
//
//lbkeogh:hotpath
func SquaredEuclidean(q, c []float64, cnt *stats.Tally) float64 {
	checkSameLength(q, c)
	var acc float64
	for i := range q {
		d := q[i] - c[i]
		acc += d * d
	}
	cnt.Add(int64(len(q)))
	return acc
}
