package dist

import (
	"math"
	"testing"
	"testing/quick"

	"lbkeogh/internal/stats"
	"lbkeogh/internal/ts"
)

func TestEuclideanKnown(t *testing.T) {
	q := []float64{0, 0, 0}
	c := []float64{1, 2, 2}
	if got := Euclidean(q, c, nil); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Euclidean = %v, want 3", got)
	}
}

func TestEuclideanStepsCounted(t *testing.T) {
	var cnt stats.Tally
	q := make([]float64, 17)
	Euclidean(q, q, &cnt)
	if cnt.Steps() != 17 {
		t.Fatalf("steps = %d, want 17", cnt.Steps())
	}
}

func TestEuclideanLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on length mismatch")
		}
	}()
	Euclidean([]float64{1}, []float64{1, 2}, nil)
}

func TestEuclideanEAExactWhenUnderThreshold(t *testing.T) {
	rng := ts.NewRand(1)
	q := ts.RandomSeries(rng, 64)
	c := ts.RandomSeries(rng, 64)
	full := Euclidean(q, c, nil)
	got, abandoned := EuclideanEA(q, c, full+1, nil)
	if abandoned {
		t.Fatal("should not abandon when threshold exceeds true distance")
	}
	if math.Abs(got-full) > 1e-12 {
		t.Fatalf("EA distance = %v, want %v", got, full)
	}
}

func TestEuclideanEAAbandons(t *testing.T) {
	q := []float64{0, 0, 0, 0}
	c := []float64{10, 0, 0, 0}
	var cnt stats.Tally
	got, abandoned := EuclideanEA(q, c, 1, &cnt)
	if !abandoned || !math.IsInf(got, 1) {
		t.Fatalf("want abandonment, got (%v,%v)", got, abandoned)
	}
	if cnt.Steps() != 1 {
		t.Fatalf("abandoned after %d steps, want 1", cnt.Steps())
	}
}

func TestEuclideanEANegativeThresholdNeverAbandons(t *testing.T) {
	q := []float64{0, 0}
	c := []float64{100, 100}
	got, abandoned := EuclideanEA(q, c, -1, nil)
	if abandoned {
		t.Fatal("negative threshold must disable abandoning")
	}
	want := Euclidean(q, c, nil)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEuclideanEAStepsSaved(t *testing.T) {
	rng := ts.NewRand(2)
	q := ts.RandomSeries(rng, 256)
	c := ts.AddNoise(rng, q, 5) // far away — should abandon early with tight r
	var cnt stats.Tally
	_, abandoned := EuclideanEA(q, c, 0.5, &cnt)
	if !abandoned {
		t.Fatal("expected abandonment")
	}
	if cnt.Steps() >= 256 {
		t.Fatalf("abandonment saved no steps: %d", cnt.Steps())
	}
}

func TestDTWZeroBandEqualsEuclidean(t *testing.T) {
	rng := ts.NewRand(3)
	for trial := 0; trial < 10; trial++ {
		q := ts.RandomSeries(rng, 50)
		c := ts.RandomSeries(rng, 50)
		ed := Euclidean(q, c, nil)
		dtw := DTW(q, c, 0, nil)
		if math.Abs(ed-dtw) > 1e-9 {
			t.Fatalf("DTW(R=0) = %v, ED = %v", dtw, ed)
		}
	}
}

func TestDTWSelfZero(t *testing.T) {
	rng := ts.NewRand(4)
	q := ts.RandomSeries(rng, 40)
	for _, R := range []int{0, 1, 5, 39, -1} {
		if d := DTW(q, q, R, nil); d != 0 { //lint:ignore floateq self-distance is exactly 0 in IEEE arithmetic
			t.Fatalf("DTW(q,q,R=%d) = %v, want 0", R, d)
		}
	}
}

func TestDTWMonotoneInBand(t *testing.T) {
	rng := ts.NewRand(5)
	q := ts.RandomSeries(rng, 60)
	c := ts.RandomSeries(rng, 60)
	prev := math.Inf(1)
	for _, R := range []int{0, 1, 2, 4, 8, 16, 59} {
		d := DTW(q, c, R, nil)
		if d > prev+1e-9 {
			t.Fatalf("DTW not monotone non-increasing in R: R=%d gave %v > %v", R, d, prev)
		}
		prev = d
	}
}

func TestDTWSymmetric(t *testing.T) {
	rng := ts.NewRand(6)
	q := ts.RandomSeries(rng, 45)
	c := ts.RandomSeries(rng, 45)
	for _, R := range []int{0, 3, 10, -1} {
		a := DTW(q, c, R, nil)
		b := DTW(c, q, R, nil)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("DTW asymmetric at R=%d: %v vs %v", R, a, b)
		}
	}
}

func TestDTWAlignsShiftedFeature(t *testing.T) {
	// A bump shifted by 2 samples: ED is large, DTW with R>=2 nearly zero.
	n := 50
	q := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < 5; i++ {
		q[20+i] = 1
		c[22+i] = 1
	}
	ed := Euclidean(q, c, nil)
	dtw := DTW(q, c, 3, nil)
	if dtw >= ed/2 {
		t.Fatalf("DTW should align the bump: DTW=%v ED=%v", dtw, ed)
	}
}

func TestDTWEAConsistent(t *testing.T) {
	rng := ts.NewRand(7)
	q := ts.RandomSeries(rng, 64)
	c := ts.RandomSeries(rng, 64)
	full := DTW(q, c, 5, nil)
	got, abandoned := DTWEA(q, c, 5, full+0.1, nil)
	if abandoned || math.Abs(got-full) > 1e-9 {
		t.Fatalf("EA with slack threshold: got (%v,%v), want (%v,false)", got, abandoned, full)
	}
	_, abandoned = DTWEA(q, c, 5, full*0.5, nil)
	if !abandoned {
		t.Fatal("EA with tight threshold should abandon")
	}
}

func TestDTWEAAbandonSavesSteps(t *testing.T) {
	rng := ts.NewRand(8)
	q := ts.RandomSeries(rng, 128)
	c := ts.AddNoise(rng, ts.RandomSeries(rng, 128), 3)
	var full, ea stats.Tally
	DTW(q, c, 5, &full)
	_, abandoned := DTWEA(q, c, 5, 0.5, &ea)
	if !abandoned {
		t.Skip("series unexpectedly close")
	}
	if ea.Steps() >= full.Steps() {
		t.Fatalf("EA steps %d >= full steps %d", ea.Steps(), full.Steps())
	}
}

func TestDTWEmpty(t *testing.T) {
	if d := DTW(nil, nil, 3, nil); d != 0 { //lint:ignore floateq empty input returns the constant 0
		t.Fatalf("DTW of empty = %v, want 0", d)
	}
}

func TestDTWPathMatchesDTW(t *testing.T) {
	rng := ts.NewRand(9)
	q := ts.RandomSeries(rng, 30)
	c := ts.RandomSeries(rng, 30)
	for _, R := range []int{0, 2, 5, 29} {
		want := DTW(q, c, R, nil)
		got, path := DTWPath(q, c, R)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("R=%d: DTWPath dist %v != DTW %v", R, got, want)
		}
		validatePath(t, path, len(q), R)
	}
}

func validatePath(t *testing.T, path [][2]int, n, R int) {
	t.Helper()
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	if path[0] != [2]int{0, 0} || path[len(path)-1] != [2]int{n - 1, n - 1} {
		t.Fatalf("path endpoints wrong: %v .. %v", path[0], path[len(path)-1])
	}
	if len(path) < n || len(path) > 2*n-1 {
		t.Fatalf("path length %d outside [n, 2n-1]", len(path))
	}
	for k := 1; k < len(path); k++ {
		di := path[k][0] - path[k-1][0]
		dj := path[k][1] - path[k-1][1]
		if di < 0 || dj < 0 || di > 1 || dj > 1 || (di == 0 && dj == 0) {
			t.Fatalf("illegal path step %v -> %v", path[k-1], path[k])
		}
	}
	for _, p := range path {
		if d := p[0] - p[1]; d > R || d < -R {
			t.Fatalf("path cell %v violates band R=%d", p, R)
		}
	}
}

// Property: DTW is a lower bound of Euclidean for any band (more freedom can
// only decrease the optimal cost).
func TestDTWLowerBoundsEuclideanProperty(t *testing.T) {
	rng := ts.NewRand(10)
	f := func(rSeed uint8) bool {
		n := 32
		q := ts.RandomSeries(rng, n)
		c := ts.RandomSeries(rng, n)
		R := int(rSeed) % n
		return DTW(q, c, R, nil) <= Euclidean(q, c, nil)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLCSSSelf(t *testing.T) {
	rng := ts.NewRand(11)
	q := ts.RandomSeries(rng, 40)
	if sim := LCSS(q, q, 0, 0, nil); sim != 40 {
		t.Fatalf("LCSS(q,q) = %d, want 40", sim)
	}
	if d := LCSSDist(q, q, 0, 0, nil); d != 0 { //lint:ignore floateq 1 - n/n is exactly 0
		t.Fatalf("LCSSDist(q,q) = %v, want 0", d)
	}
}

func TestLCSSKnown(t *testing.T) {
	q := []float64{1, 2, 3, 4, 5}
	c := []float64{1, 9, 3, 9, 5}
	if sim := LCSS(q, c, 0, 0.1, nil); sim != 3 {
		t.Fatalf("LCSS = %d, want 3", sim)
	}
}

func TestLCSSWindowMatters(t *testing.T) {
	// c is q shifted by 2; with delta>=2 all interior points match.
	q := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	c := ts.Rotate(q, 2)
	wide := LCSS(q, c, 2, 0.01, nil)
	narrow := LCSS(q, c, 0, 0.01, nil)
	if wide <= narrow {
		t.Fatalf("wider window should match more: wide=%d narrow=%d", wide, narrow)
	}
	if wide != 6 {
		t.Fatalf("wide = %d, want 6 (all but the wrapped pair)", wide)
	}
}

func TestLCSSMonotoneInEps(t *testing.T) {
	rng := ts.NewRand(12)
	q := ts.RandomSeries(rng, 50)
	c := ts.RandomSeries(rng, 50)
	prev := -1
	for _, eps := range []float64{0, 0.1, 0.5, 1, 2, 10} {
		sim := LCSS(q, c, 5, eps, nil)
		if sim < prev {
			t.Fatalf("LCSS not monotone in eps: %d after %d", sim, prev)
		}
		prev = sim
	}
	if prev != 50 {
		t.Fatalf("huge eps should match everything, got %d", prev)
	}
}

func TestLCSSDistRange(t *testing.T) {
	rng := ts.NewRand(13)
	f := func(e uint8) bool {
		q := ts.RandomSeries(rng, 30)
		c := ts.RandomSeries(rng, 30)
		d := LCSSDist(q, c, 4, float64(e)/64, nil)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLCSSEmpty(t *testing.T) {
	if LCSS(nil, nil, 1, 1, nil) != 0 {
		t.Fatal("LCSS of empty should be 0")
	}
	if LCSSDist(nil, nil, 1, 1, nil) != 0 { //lint:ignore floateq empty input returns the constant 0
		t.Fatal("LCSSDist of empty should be 0")
	}
}
