package envelope

// Algebraic properties of the wedge operations: Merge forms a commutative,
// associative, idempotent semilattice, and DTW expansion composes additively
// in the radius. These identities justify building envelopes bottom-up over
// an arbitrary dendrogram shape.

import (
	"testing"
	"testing/quick"

	"lbkeogh/internal/ts"
)

func equalEnv(a, b Envelope, tol float64) bool {
	return ts.Equal(a.U, b.U, tol) && ts.Equal(a.L, b.L, tol)
}

func TestMergeCommutative(t *testing.T) {
	rng := ts.NewRand(1)
	f := func() bool {
		a := New(ts.RandomWalk(rng, 20))
		b := New(ts.RandomWalk(rng, 20))
		return equalEnv(Merge(a, b), Merge(b, a), 0)
	}
	for i := 0; i < 30; i++ {
		if !f() {
			t.Fatal("Merge not commutative")
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	rng := ts.NewRand(2)
	for i := 0; i < 30; i++ {
		a := New(ts.RandomWalk(rng, 16))
		b := New(ts.RandomWalk(rng, 16))
		c := New(ts.RandomWalk(rng, 16))
		if !equalEnv(Merge(Merge(a, b), c), Merge(a, Merge(b, c)), 0) {
			t.Fatal("Merge not associative")
		}
	}
}

func TestMergeIdempotent(t *testing.T) {
	rng := ts.NewRand(3)
	a := New(ts.RandomWalk(rng, 24), ts.RandomWalk(rng, 24))
	if !equalEnv(Merge(a, a), a, 0) {
		t.Fatal("Merge not idempotent")
	}
}

// Expansion composes: expanding by R1 then R2 equals expanding by R1+R2
// (sliding-window max/min over windows composes additively).
func TestExpandComposes(t *testing.T) {
	rng := ts.NewRand(4)
	f := func(r1, r2 uint8) bool {
		n := 30
		e := New(ts.RandomWalk(rng, n), ts.RandomWalk(rng, n))
		a, b := int(r1)%8, int(r2)%8
		composed := e.ExpandDTW(a).ExpandDTW(b)
		direct := e.ExpandDTW(a + b)
		return equalEnv(composed, direct, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Expansion commutes with Merge: Merge(expand(a), expand(b)) ==
// expand(Merge(a, b)) — the identity that lets the wedge tree expand
// per-node envelopes instead of re-deriving them from leaves.
func TestExpandCommutesWithMerge(t *testing.T) {
	rng := ts.NewRand(5)
	for i := 0; i < 30; i++ {
		a := New(ts.RandomWalk(rng, 25))
		b := New(ts.RandomWalk(rng, 25), ts.RandomWalk(rng, 25))
		R := i % 6
		left := Merge(a.ExpandDTW(R), b.ExpandDTW(R))
		right := Merge(a, b).ExpandDTW(R)
		if !equalEnv(left, right, 1e-12) {
			t.Fatalf("R=%d: expand does not commute with merge", R)
		}
	}
}

// Expansion is monotone in R: wider bands give wider envelopes.
func TestExpandMonotoneInR(t *testing.T) {
	rng := ts.NewRand(6)
	e := New(ts.RandomWalk(rng, 40), ts.RandomWalk(rng, 40))
	prev := e
	for _, R := range []int{0, 1, 2, 4, 8, 16, 39} {
		x := e.ExpandDTW(R)
		for i := range x.U {
			if x.U[i] < prev.U[i]-1e-12 || x.L[i] > prev.L[i]+1e-12 {
				t.Fatalf("expansion not monotone at R=%d", R)
			}
		}
		prev = x
	}
}

// LB_Keogh is monotone in the wedge: a fatter wedge gives a smaller (or
// equal) bound — the Figure 8 observation that drives the whole K tradeoff.
func TestLBMonotoneInWedge(t *testing.T) {
	rng := ts.NewRand(7)
	for i := 0; i < 30; i++ {
		a := New(ts.RandomWalk(rng, 24))
		b := New(ts.RandomWalk(rng, 24))
		m := Merge(a, b)
		q := ts.RandomWalk(rng, 24)
		lbA, _ := LBKeogh(q, a, -1, nil)
		lbM, _ := LBKeogh(q, m, -1, nil)
		if lbM > lbA+1e-12 {
			t.Fatalf("merged wedge bound %v exceeds child bound %v", lbM, lbA)
		}
	}
}
