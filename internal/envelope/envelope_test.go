package envelope

import (
	"math"
	"testing"
	"testing/quick"

	"lbkeogh/internal/dist"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/ts"
)

func randomSet(seed int64, k, n int) [][]float64 {
	rng := ts.NewRand(seed)
	set := make([][]float64, k)
	for i := range set {
		set[i] = ts.RandomWalk(rng, n)
	}
	return set
}

func TestNewEnclosesMembers(t *testing.T) {
	set := randomSet(1, 5, 64)
	e := New(set...)
	for i, s := range set {
		if !e.Contains(s, 0) {
			t.Fatalf("member %d escapes its own envelope", i)
		}
	}
}

func TestNewSingleSeriesDegenerate(t *testing.T) {
	s := []float64{1, 2, 3}
	e := New(s)
	if !ts.Equal(e.U, s, 0) || !ts.Equal(e.L, s, 0) {
		t.Fatal("single-series envelope must have U == L == series")
	}
	// LB_Keogh against a singleton wedge is the Euclidean distance.
	q := []float64{2, 2, 2}
	lb, _ := LBKeogh(q, e, -1, nil)
	ed := dist.Euclidean(q, s, nil)
	if math.Abs(lb-ed) > 1e-12 {
		t.Fatalf("singleton LB_Keogh = %v, want ED %v", lb, ed)
	}
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on empty input")
		}
	}()
	New()
}

func TestNewPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on length mismatch")
		}
	}()
	New([]float64{1, 2}, []float64{1})
}

func TestMergeContainsChildren(t *testing.T) {
	set := randomSet(2, 6, 48)
	a := New(set[0], set[1], set[2])
	b := New(set[3], set[4], set[5])
	m := Merge(a, b)
	for _, s := range set {
		if !m.Contains(s, 0) {
			t.Fatal("merged wedge must contain every child member")
		}
	}
	if m.Area() < a.Area() || m.Area() < b.Area() {
		t.Fatal("merged wedge area must be at least each child's area")
	}
}

func TestMergeEqualsNew(t *testing.T) {
	set := randomSet(3, 4, 32)
	direct := New(set...)
	merged := Merge(New(set[0], set[1]), New(set[2], set[3]))
	if !ts.Equal(direct.U, merged.U, 0) || !ts.Equal(direct.L, merged.L, 0) {
		t.Fatal("Merge of sub-wedges must equal envelope of union")
	}
}

// Proposition 1: LB_Keogh(Q, W) <= ED(Q, C_s) for every member C_s.
func TestProposition1(t *testing.T) {
	rng := ts.NewRand(4)
	for trial := 0; trial < 50; trial++ {
		set := randomSet(int64(trial+100), 4, 40)
		e := New(set...)
		q := ts.RandomWalk(rng, 40)
		lb, _ := LBKeogh(q, e, -1, nil)
		for _, s := range set {
			ed := dist.Euclidean(q, s, nil)
			if lb > ed+1e-9 {
				t.Fatalf("LB_Keogh %v exceeds ED %v", lb, ed)
			}
		}
	}
}

// Proposition 2: LB_KeoghDTW(Q, W) <= DTW_R(Q, C_s) for every member.
func TestProposition2(t *testing.T) {
	rng := ts.NewRand(5)
	for _, R := range []int{0, 1, 3, 8} {
		for trial := 0; trial < 20; trial++ {
			set := randomSet(int64(trial+500), 3, 36)
			e := New(set...).ExpandDTW(R)
			q := ts.RandomWalk(rng, 36)
			lb, _ := LBKeogh(q, e, -1, nil)
			for _, s := range set {
				d := dist.DTW(q, s, R, nil)
				if lb > d+1e-9 {
					t.Fatalf("R=%d: LB_KeoghDTW %v exceeds DTW %v", R, lb, d)
				}
			}
		}
	}
}

func TestLBKeoghInsideEnvelopeIsZero(t *testing.T) {
	set := randomSet(6, 5, 32)
	e := New(set...)
	lb, abandoned := LBKeogh(set[2], e, -1, nil)
	if abandoned || lb != 0 { //lint:ignore floateq a member incurs zero discrepancy at every sample, exactly
		t.Fatalf("LB for a member must be 0, got (%v,%v)", lb, abandoned)
	}
}

func TestLBKeoghEarlyAbandon(t *testing.T) {
	n := 64
	e := New(make([]float64, n)) // flat zero envelope
	q := make([]float64, n)
	q[0] = 10
	var cnt stats.Tally
	lb, abandoned := LBKeogh(q, e, 1, &cnt)
	if !abandoned || !math.IsInf(lb, 1) {
		t.Fatalf("want abandonment, got (%v,%v)", lb, abandoned)
	}
	if cnt.Steps() != 1 {
		t.Fatalf("abandoned after %d steps, want 1", cnt.Steps())
	}
}

func TestLBKeoghThresholdExact(t *testing.T) {
	set := randomSet(7, 3, 40)
	e := New(set...)
	rng := ts.NewRand(8)
	q := ts.RandomWalk(rng, 40)
	full, _ := LBKeogh(q, e, -1, nil)
	got, abandoned := LBKeogh(q, e, full+0.01, nil)
	if abandoned || math.Abs(got-full) > 1e-12 {
		t.Fatalf("threshold above LB must not abandon: (%v,%v) want %v", got, abandoned, full)
	}
}

func TestExpandDTWWidens(t *testing.T) {
	set := randomSet(9, 2, 50)
	e := New(set...)
	for _, R := range []int{0, 1, 5, 49} {
		x := e.ExpandDTW(R)
		for i := range x.U {
			if x.U[i] < e.U[i]-1e-12 || x.L[i] > e.L[i]+1e-12 {
				t.Fatalf("R=%d: expansion must widen the envelope", R)
			}
		}
	}
	zero := e.ExpandDTW(0)
	if !ts.Equal(zero.U, e.U, 0) || !ts.Equal(zero.L, e.L, 0) {
		t.Fatal("R=0 expansion must be identity")
	}
}

// The deque-based expansion must match a naive O(nR) reference.
func TestExpandDTWMatchesNaive(t *testing.T) {
	rng := ts.NewRand(10)
	for trial := 0; trial < 20; trial++ {
		n := 30 + trial
		s := ts.RandomSeries(rng, n)
		e := New(s)
		R := trial % 7
		got := e.ExpandDTW(R)
		for i := 0; i < n; i++ {
			lo, hi := i-R, i+R
			if lo < 0 {
				lo = 0
			}
			if hi > n-1 {
				hi = n - 1
			}
			u, l := math.Inf(-1), math.Inf(1)
			for j := lo; j <= hi; j++ {
				u = math.Max(u, s[j])
				l = math.Min(l, s[j])
			}
			if math.Abs(got.U[i]-u) > 1e-12 || math.Abs(got.L[i]-l) > 1e-12 {
				t.Fatalf("trial %d i=%d: deque (%v,%v) naive (%v,%v)", trial, i, got.U[i], got.L[i], u, l)
			}
		}
	}
}

func TestExpandDTWFullWindowIsGlobalMinMax(t *testing.T) {
	s := []float64{3, -1, 4, 1, 5}
	e := New(s).ExpandDTW(10)
	for i := range s {
		if e.U[i] != 5 || e.L[i] != -1 { //lint:ignore floateq envelope bounds are copied from the input, not computed
			t.Fatal("full-window expansion must be global min/max everywhere")
		}
	}
}

func TestAreaZeroForSingleton(t *testing.T) {
	e := New([]float64{1, 2, 3})
	if e.Area() != 0 { //lint:ignore floateq U == L for a singleton, so every term is exactly 0
		t.Fatalf("singleton wedge area = %v, want 0", e.Area())
	}
}

// LCSS: the envelope match count upper-bounds the true LCSS similarity for
// every member, for any eps and window delta.
func TestLCSSUpperBoundProperty(t *testing.T) {
	rng := ts.NewRand(11)
	f := func(dSeed, eSeed uint8) bool {
		n := 32
		delta := int(dSeed) % 8
		eps := float64(eSeed) / 128
		set := [][]float64{ts.RandomWalk(rng, n), ts.RandomWalk(rng, n), ts.RandomWalk(rng, n)}
		e := New(set...).ExpandDTW(delta)
		q := ts.RandomWalk(rng, n)
		ub := LCSSUpperBound(q, e, eps, nil)
		for _, s := range set {
			if sim := dist.LCSS(q, s, delta, eps, nil); sim > ub {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: LB_Keogh never exceeds the Euclidean distance to any member of a
// randomly assembled wedge (random sizes, random walks).
func TestLBKeoghAdmissibleProperty(t *testing.T) {
	rng := ts.NewRand(12)
	f := func(kSeed uint8) bool {
		n := 24
		k := 1 + int(kSeed)%6
		set := make([][]float64, k)
		for i := range set {
			set[i] = ts.RandomWalk(rng, n)
		}
		e := New(set...)
		q := ts.RandomWalk(rng, n)
		lb, _ := LBKeogh(q, e, -1, nil)
		for _, s := range set {
			if lb > dist.Euclidean(q, s, nil)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
