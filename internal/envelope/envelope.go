// Package envelope implements time-series wedges and the LB_Keogh family of
// lower bounds that are the cornerstone of the paper (Section 4.1).
//
// A wedge W = {U, L} is the tightest pair of sequences enclosing a set of
// candidate series from above and below (Figure 6). LB_Keogh(Q, W) lower
// bounds the Euclidean distance from Q to every member of the wedge
// (Proposition 1); widening the wedge by the Sakoe-Chiba radius R yields
// LB_KeoghDTW, which lower bounds the banded DTW distance to every member
// (Proposition 2, Figure 13).
package envelope

import (
	"fmt"
	"math"

	"lbkeogh/internal/stats"
)

// BoundName is the stable stage tag for the LB_Keogh envelope bound in
// pruning-waterfall telemetry (explain plans, /metrics labels).
const BoundName = "envelope"

// Envelope is a wedge W = {U, L}: for every member series C enclosed by the
// wedge and every position i, L[i] <= C[i] <= U[i].
type Envelope struct {
	U, L []float64
}

// New builds the tightest envelope enclosing the given series, all of which
// must share the same length. At least one series is required.
//
//lbkeogh:hotpath
func New(series ...[]float64) Envelope {
	if len(series) == 0 {
		panic("envelope: New requires at least one series")
	}
	n := len(series[0])
	u := make([]float64, n) //lint:ignore hotalloc result buffer, one per envelope built
	l := make([]float64, n) //lint:ignore hotalloc result buffer, one per envelope built
	copy(u, series[0])
	copy(l, series[0])
	for _, s := range series[1:] {
		if len(s) != n {
			panic(fmt.Sprintf("envelope: length mismatch %d vs %d", len(s), n))
		}
		for i, v := range s {
			if v > u[i] {
				u[i] = v
			}
			if v < l[i] {
				l[i] = v
			}
		}
	}
	return Envelope{U: u, L: l}
}

// Merge returns the envelope enclosing both a and b (the hierarchical wedge
// combination of Figure 7: U_i = max(a.U_i, b.U_i), L_i = min(a.L_i, b.L_i)).
//
//lbkeogh:hotpath
func Merge(a, b Envelope) Envelope {
	// Locals let the compiler prove the four length equalities below and
	// drop every per-iteration bounds check in the loop (ssa/check_bce).
	au, al, bu, bl := a.U, a.L, b.U, b.L
	if len(au) != len(bu) || len(al) != len(au) || len(bl) != len(au) {
		panic(fmt.Sprintf("envelope: Merge length mismatch U %d/%d L %d/%d",
			len(au), len(bu), len(al), len(bl)))
	}
	n := len(au)
	u := make([]float64, n) //lint:ignore hotalloc result buffer, one per merge
	l := make([]float64, n) //lint:ignore hotalloc result buffer, one per merge
	for i := range u {
		u[i] = math.Max(au[i], bu[i])
		l[i] = math.Min(al[i], bl[i])
	}
	return Envelope{U: u, L: l}
}

// Len returns the series length covered by the envelope.
func (e Envelope) Len() int { return len(e.U) }

// Area returns the total vertical extent sum(U_i - L_i). The paper observes
// (Figure 8) that a wedge's pruning utility is inversely related to its area;
// the wedge-producing clustering minimizes exactly this quantity.
func (e Envelope) Area() float64 {
	var a float64
	for i := range e.U {
		a += e.U[i] - e.L[i]
	}
	return a
}

// Contains reports whether series s lies inside the envelope everywhere,
// within tolerance tol.
func (e Envelope) Contains(s []float64, tol float64) bool {
	if len(s) != len(e.U) {
		return false
	}
	for i, v := range s {
		if v > e.U[i]+tol || v < e.L[i]-tol {
			return false
		}
	}
	return true
}

// ExpandDTW returns the envelope widened for banded DTW with Sakoe-Chiba
// radius R (Figure 13):
//
//	DTW_U[i] = max(U[i-R] .. U[i+R]),  DTW_L[i] = min(L[i-R] .. L[i+R])
//
// clamped at the series boundaries. R <= 0 returns a copy of e.
//
// The expansion runs in O(n) using a monotonic-deque sliding-window
// max/min rather than the naive O(nR) scan; the result is identical.
//
//lbkeogh:hotpath
func (e Envelope) ExpandDTW(R int) Envelope {
	n := len(e.U)
	if R < 0 {
		R = 0
	}
	if R > n-1 {
		R = n - 1
	}
	return Envelope{
		U: slidingMax(e.U, R, true),
		L: slidingMax(e.L, R, false),
	}
}

// slidingMax computes out[i] = max (or min) of s[max(0,i-R) .. min(n-1,i+R)]
// with a monotonic index deque. The max/min selection is branched inline
// rather than through a closure so the inner loop stays call-free.
//
//lbkeogh:hotpath
func slidingMax(s []float64, R int, wantMax bool) []float64 {
	n := len(s)
	out := make([]float64, n) //lint:ignore hotalloc result buffer, one per expansion
	if n == 0 {
		return out
	}
	deque := make([]int, 0, n) //lint:ignore hotalloc scratch deque, one per expansion
	// Window for position i is [i-R, i+R]; advance right edge j.
	j := 0
	for i := 0; i < n; i++ {
		hi := i + R
		if hi > n-1 {
			hi = n - 1
		}
		for ; j <= hi; j++ {
			for len(deque) > 0 {
				last := s[deque[len(deque)-1]]
				if wantMax && s[j] < last || !wantMax && s[j] > last {
					break
				}
				deque = deque[:len(deque)-1]
			}
			deque = append(deque, j) //lint:ignore hotalloc deque capacity n is preallocated; never grows
		}
		lo := i - R
		for len(deque) > 0 && deque[0] < lo {
			deque = deque[1:]
		}
		out[i] = s[deque[0]]
	}
	return out
}

// LBKeogh is EA_LB_Keogh from Table 5 of the paper: the early-abandoning
// lower bound between query series q and wedge e. It returns (Inf, true) as
// soon as the accumulated squared error exceeds r²; otherwise the exact
// LB_Keogh value and false. r < 0 disables abandoning. Steps are charged per
// sample examined.
//
// When e encloses a single series, LBKeogh degenerates to the Euclidean
// distance (the paper's first observation about LB_Keogh).
//
// LBKeogh accumulates and abandons in squared space; only the final return
// converts to root units, so it is a documented root-space API boundary.
//
//lbkeogh:hotpath
//lbkeogh:rootspace
//lbkeogh:lowerbound
func LBKeogh(q []float64, e Envelope, r float64, cnt *stats.Tally) (float64, bool) {
	// Locals + a combined length check make u[i]/l[i] provably in bounds for
	// every i < len(q), so the inner loop carries no bounds checks.
	u, l := e.U, e.L
	if len(q) != len(u) || len(l) != len(u) {
		panic(fmt.Sprintf("envelope: LBKeogh length mismatch q %d vs U %d L %d", len(q), len(u), len(l)))
	}
	r2 := math.Inf(1)
	if r >= 0 {
		r2 = r * r
	}
	var acc float64
	for i, v := range q {
		if v > u[i] {
			d := v - u[i]
			acc += d * d
		} else if v < l[i] {
			d := v - l[i]
			acc += d * d
		}
		if acc > r2 {
			cnt.Add(int64(i + 1))
			return math.Inf(1), true
		}
	}
	cnt.Add(int64(len(q)))
	return math.Sqrt(acc), false
}

// LCSSUpperBound returns an upper bound on the LCSS similarity between q and
// every series enclosed by e, for matching threshold eps. e must already be
// expanded by the LCSS window delta (the same ExpandDTW widening applies,
// per reference [37]). A point can only participate in a match if it lies
// within eps of the widened envelope, so counting such points bounds the
// similarity from above; as the paper notes, for a similarity measure the
// inequality signs simply reverse.
//
//lbkeogh:hotpath
func LCSSUpperBound(q []float64, e Envelope, eps float64, cnt *stats.Tally) int {
	u, l := e.U, e.L
	if len(q) != len(u) || len(l) != len(u) {
		panic(fmt.Sprintf("envelope: LCSSUpperBound length mismatch q %d vs U %d L %d", len(q), len(u), len(l)))
	}
	matches := 0
	for i, v := range q {
		if v <= u[i]+eps && v >= l[i]-eps {
			matches++
		}
	}
	cnt.Add(int64(len(q)))
	return matches
}
