package loadgen_test

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"lbkeogh"
	"lbkeogh/internal/loadgen"
	"lbkeogh/internal/server"
)

// livezAdmission polls /livez until pred accepts the admission stats (or the
// deadline kills the test).
func livezAdmission(t *testing.T, url string, pred func(inflight, waiting int64) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/livez")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Admission struct {
				Inflight int64 `json:"inflight"`
				Waiting  int64 `json:"waiting"`
			} `json:"admission"`
		}
		err = json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if pred(health.Admission.Inflight, health.Admission.Waiting) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (inflight %d, waiting %d)",
				what, health.Admission.Inflight, health.Admission.Waiting)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmissionSemanticsUnderLoad drives the real server past its admission
// bounds with the loadgen request path and pins the full contract:
// queue-full requests get 429 with Retry-After, queued requests whose
// deadline expires get 504, released requests complete, and afterwards the
// server's cumulative counters reconcile exactly with what the client saw.
// Run under -race this also exercises the loadgen recorder and the server's
// admission bookkeeping concurrently.
func TestAdmissionSemanticsUnderLoad(t *testing.T) {
	started := make(chan struct{}, 8)
	gate := make(chan struct{})
	ts, _ := newTestServer(t, server.Config{
		DB:          lbkeogh.SyntheticProjectilePoints(3, 12, 32),
		MaxInflight: 2,
		MaxQueue:    2,
		BeforeSearchHook: func() {
			started <- struct{}{}
			<-gate
		},
	})
	g, err := loadgen.New(loadgen.Config{Target: ts.URL, DBSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	before, err := g.Scrape(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Two requests fill the in-flight slots and block inside the hook.
	blockers := make(chan loadgen.Outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			blockers <- g.Do(ctx, loadgen.OpSearch, g.RequestBody(loadgen.OpSearch, 0, 10000), time.Now())
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("blockers never reached the search hook")
		}
	}

	// Two more requests with short deadlines occupy the wait queue.
	queued := make(chan loadgen.Outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			queued <- g.Do(ctx, loadgen.OpSearch, g.RequestBody(loadgen.OpSearch, 1, 400), time.Now())
		}()
	}
	livezAdmission(t, ts.URL, func(inflight, waiting int64) bool {
		return inflight == 2 && waiting == 2
	}, "slots and queue to fill")

	// With slots and queue full, further requests must be shed immediately:
	// 429 plus a Retry-After hint.
	for i := 0; i < 6; i++ {
		out := g.Do(ctx, loadgen.OpSearch, g.RequestBody(loadgen.OpSearch, 2, 400), time.Now())
		if out.Status != http.StatusTooManyRequests || out.Class != "rejected" {
			t.Fatalf("shed request %d: status %d class %q", i, out.Status, out.Class)
		}
		if out.RetryAfter == "" {
			t.Errorf("429 without Retry-After")
		}
	}

	// The queued pair's deadlines expire while still waiting: 504.
	for i := 0; i < 2; i++ {
		out := <-queued
		if out.Status != http.StatusGatewayTimeout || out.Class != "timeout" {
			t.Fatalf("queued request: status %d class %q (want 504/timeout)", out.Status, out.Class)
		}
	}

	// Release the gate; the blocked pair completes normally.
	close(gate)
	for i := 0; i < 2; i++ {
		out := <-blockers
		if out.Status != http.StatusOK || out.Class != "ok" {
			t.Fatalf("released request: status %d class %q err %v", out.Status, out.Class, out.Err)
		}
	}
	livezAdmission(t, ts.URL, func(inflight, waiting int64) bool {
		return inflight == 0 && waiting == 0
	}, "server to drain")

	// Reconcile: the server's cumulative counters must agree exactly with
	// the ten outcomes the client observed.
	after, err := g.ScrapeSettled(ctx, before, 10)
	if err != nil {
		t.Fatal(err)
	}
	res := loadgen.RunResult{
		Intended:  10,
		Completed: 10,
		Endpoints: map[string]loadgen.EndpointReport{
			"search": {
				Requests: 10,
				Classes:  map[string]int64{"ok": 2, "rejected": 6, "timeout": 2},
			},
		},
	}
	cv := loadgen.CrossValidate(before, after, res, 0)
	if !cv.CountsAgree {
		t.Errorf("counter reconciliation failed: %v", cv.Mismatches)
	}
	if d := after.Admitted - before.Admitted; d != 2 {
		t.Errorf("admitted delta = %d, want 2", d)
	}
	if d := after.Rejected - before.Rejected; d != 6 {
		t.Errorf("rejected delta = %d, want 6", d)
	}
}
