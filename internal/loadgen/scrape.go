package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"lbkeogh/internal/obs/expofmt"
	"lbkeogh/internal/obs/ops"
)

// ServerSnapshot is one scrape of the server's cumulative request counters
// and rolling-window latency view, parsed from /metrics through expofmt.
type ServerSnapshot struct {
	// Counts is shapeserver_endpoint_requests_total by endpoint then error
	// class — cumulative since process start, so two snapshots delta exactly.
	Counts map[string]map[string]int64
	// Admitted and Rejected are the admission-control lifetime counters.
	Admitted int64
	Rejected int64
	// WindowP99S holds the rolling window's bucket-resolution p99 (seconds)
	// per endpoint, +Inf when the window's tail blew past the finite buckets,
	// absent when the window saw no requests.
	WindowP99S map[string]float64
}

// Total sums every endpoint/class count.
func (s *ServerSnapshot) Total() int64 {
	var t int64
	for _, classes := range s.Counts {
		for _, v := range classes {
			t += v
		}
	}
	return t
}

// Scrape fetches and parses the server's /metrics.
func (g *Generator) Scrape(ctx context.Context) (*ServerSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.cfg.Target+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape: status %d", resp.StatusCode)
	}
	e, err := expofmt.Parse(string(body))
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape parse: %w", err)
	}
	snap := &ServerSnapshot{
		Counts:     map[string]map[string]int64{},
		WindowP99S: map[string]float64{},
	}
	for _, s := range e.Find("shapeserver_endpoint_requests_total") {
		ep := s.Labels["endpoint"]
		if snap.Counts[ep] == nil {
			snap.Counts[ep] = map[string]int64{}
		}
		snap.Counts[ep][s.Labels["class"]] = int64(s.Value)
	}
	if len(snap.Counts) == 0 {
		return nil, fmt.Errorf("loadgen: scrape: shapeserver_endpoint_requests_total missing from exposition")
	}
	snap.Admitted = e.Counter("shapeserver_admitted_total", nil)
	snap.Rejected = e.Counter("shapeserver_rejected_total", nil)
	for ep := range snap.Counts {
		if p99, ok := e.HistogramQuantile("shapeserver_request_duration_seconds",
			map[string]string{"endpoint": ep}, 0.99); ok {
			snap.WindowP99S[ep] = p99
		}
	}
	return snap, nil
}

// ScrapeSettled scrapes until the server's counters have advanced by at
// least want over before (or the deadline passes, returning the last scrape
// anyway). The server observes a request's terminal outcome after writing
// its response, so a client that has just read its last response body can
// race a scrape by a scheduler quantum; polling absorbs that without
// papering over real disagreement.
func (g *Generator) ScrapeSettled(ctx context.Context, before *ServerSnapshot, want int64) (*ServerSnapshot, error) {
	deadline := time.Now().Add(2 * time.Second)
	for {
		after, err := g.Scrape(ctx)
		if err != nil {
			return nil, err
		}
		if after.Total()-before.Total() >= want || time.Now().After(deadline) {
			return after, nil
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return after, nil
		}
	}
}

// ServerDelta is the change in server-side counters across one run.
type ServerDelta struct {
	Counts   map[string]map[string]int64 `json:"counts"`
	Admitted int64                       `json:"admitted"`
	Rejected int64                       `json:"rejected"`
	// WindowP99MS is the rolling-window p99 per endpoint at the after-scrape
	// (ms; the window is wall-time trailing, so this reflects the run only
	// when the run fits inside it).
	WindowP99MS map[string]float64 `json:"window_p99_ms"`
}

func deltaSnapshots(before, after *ServerSnapshot) *ServerDelta {
	d := &ServerDelta{
		Counts:      map[string]map[string]int64{},
		Admitted:    after.Admitted - before.Admitted,
		Rejected:    after.Rejected - before.Rejected,
		WindowP99MS: map[string]float64{},
	}
	for ep, classes := range after.Counts {
		for class, v := range classes {
			dv := v - before.Counts[ep][class]
			if dv != 0 {
				if d.Counts[ep] == nil {
					d.Counts[ep] = map[string]int64{}
				}
				d.Counts[ep][class] = dv
			}
		}
	}
	for ep, v := range after.WindowP99S {
		d.WindowP99MS[ep] = v * 1e3
	}
	return d
}

// CrossValidation is the verdict of comparing client-observed outcomes
// against the server's own counter deltas for the same run.
type CrossValidation struct {
	// CountsAgree is false when any per-endpoint, per-class count disagrees
	// beyond the tolerance; Mismatches names each disagreement.
	CountsAgree bool     `json:"counts_agree"`
	Mismatches  []string `json:"mismatches,omitempty"`
	// LatencyChecked is true when some endpoint qualified for the p99
	// comparison (clean outcomes, enough samples); LatencyAgree then reports
	// whether every checked endpoint's client p99 sits within the stated
	// bucket tolerance of the server's window p99.
	LatencyChecked bool `json:"latency_checked"`
	LatencyAgree   bool `json:"latency_agree"`
	// ClientP99MS / ServerWindowP99MS carry the compared values per checked
	// endpoint.
	ClientP99MS       map[string]float64 `json:"client_p99_ms,omitempty"`
	ServerWindowP99MS map[string]float64 `json:"server_window_p99_ms,omitempty"`
}

// latencyMinRequests is the sample floor below which a bucket-resolution p99
// comparison is noise.
const latencyMinRequests = 20

// CrossValidate reconciles a run's client tallies against the server counter
// delta between before and after.
//
// Counts: for each endpoint the client drove, every error class must match
// within tol — except that requests the client wrote off as network errors
// may have reached the server and been counted there (typically as "ok" or
// "server" when the client connection dropped mid-response), so per-class
// and total comparisons get NetworkErrors of slack in that direction.
//
// Latency: endpoints with only "ok" outcomes and at least latencyMinRequests
// samples are compared p99-to-p99 against the server's rolling window. Both
// sides bucket into the same power-of-two bounds, but they measure different
// spans — the client from intended start to body receipt (queueing and
// network included), the server from admission to response write — so the
// comparison allows three buckets (a factor of 8) of client-over-server
// spread and flags server-over-client beyond one bucket, which would mean
// the client is under-reporting. Only meaningful when the run fits inside
// the server's rolling window; callers at saturation should expect
// LatencyChecked == false because error classes disqualify the endpoints.
func CrossValidate(before, after *ServerSnapshot, res RunResult, tol int64) *CrossValidation {
	cv := &CrossValidation{
		CountsAgree:       true,
		LatencyAgree:      true,
		ClientP99MS:       map[string]float64{},
		ServerWindowP99MS: map[string]float64{},
	}
	delta := deltaSnapshots(before, after)
	slack := res.NetworkErrors

	eps := make([]string, 0, len(res.Endpoints))
	for ep := range res.Endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		rep := res.Endpoints[ep]
		for _, class := range ops.ClassNames() {
			clientN := rep.Classes[class]
			serverN := delta.Counts[ep][class]
			diff := serverN - clientN
			lo, hi := -tol, tol
			// Network write-offs may surface server-side in any class, so
			// the server may exceed the client by up to the slack.
			hi += slack
			if diff < lo || diff > hi {
				cv.CountsAgree = false
				cv.Mismatches = append(cv.Mismatches, fmt.Sprintf(
					"endpoint %s class %s: client %d vs server %d (tol %d, network slack %d)",
					ep, class, clientN, serverN, tol, slack))
			}
		}

		clean := rep.Requests >= latencyMinRequests && rep.Classes["ok"] == rep.Requests
		serverP99S, haveServer := after.WindowP99S[ep]
		if clean && haveServer && serverP99S > 0 {
			cv.LatencyChecked = true
			cv.ClientP99MS[ep] = rep.P99MS
			cv.ServerWindowP99MS[ep] = serverP99S * 1e3
			clientMS, serverMS := rep.P99MS, serverP99S*1e3
			// Three power-of-two buckets of client-over-server spread, one
			// of server-over-client.
			if clientMS > serverMS*8 || clientMS < serverMS/2 {
				cv.LatencyAgree = false
				cv.Mismatches = append(cv.Mismatches, fmt.Sprintf(
					"endpoint %s p99: client %.2fms vs server window %.2fms outside [x0.5, x8]",
					ep, clientMS, serverMS))
			}
		}
	}

	// Totals, including classes the client never saw (they would have been
	// caught above only for endpoints the client drove).
	var clientTotal int64
	for _, rep := range res.Endpoints {
		clientTotal += rep.Requests
	}
	clientTotal -= res.NetworkErrors // network errors may not have reached the server
	var serverTotal int64
	for _, classes := range delta.Counts {
		for _, v := range classes {
			serverTotal += v
		}
	}
	if d := serverTotal - clientTotal; d < -tol || d > tol+slack {
		cv.CountsAgree = false
		cv.Mismatches = append(cv.Mismatches, fmt.Sprintf(
			"total: client %d (minus %d network) vs server %d (tol %d)",
			clientTotal+res.NetworkErrors, res.NetworkErrors, serverTotal, tol))
	}
	return cv
}

// Discover reads the server's /livez to size the workload: how many series
// the database holds (bounds query_index) and their length.
func Discover(ctx context.Context, target string, client *http.Client) (dbSize, seriesLen int, err error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/livez", nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, fmt.Errorf("loadgen: discover: %w", err)
	}
	defer resp.Body.Close()
	var health struct {
		SeriesLen int `json:"series_len"`
		DBSize    int `json:"db_size"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return 0, 0, fmt.Errorf("loadgen: discover decode: %w", err)
	}
	if health.DBSize <= 0 {
		return 0, 0, fmt.Errorf("loadgen: discover: server reports db_size %d", health.DBSize)
	}
	return health.DBSize, health.SeriesLen, nil
}
