package loadgen_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lbkeogh"
	"lbkeogh/internal/loadgen"
	"lbkeogh/internal/server"
)

func newTestServer(t *testing.T, cfg server.Config) (*httptest.Server, *server.Server) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = lbkeogh.SyntheticProjectilePoints(3, 12, 32)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestRunAgainstServer drives a real server in-process with a mixed workload
// and requires the client/server cross-validation to reconcile exactly.
func TestRunAgainstServer(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	dbSize, seriesLen, err := loadgen.Discover(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dbSize != 12 || seriesLen != 32 {
		t.Fatalf("discover: db_size %d series_len %d", dbSize, seriesLen)
	}
	g, err := loadgen.New(loadgen.Config{
		Target: ts.URL,
		Mix: []loadgen.MixEntry{
			{Op: loadgen.OpSearch, Weight: 2},
			{Op: loadgen.OpTopK, Weight: 1},
			{Op: loadgen.OpRange, Weight: 1},
		},
		RepeatFraction: 0.5,
		DBSize:         dbSize,
		TimeoutMS:      5000,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	before, err := g.Scrape(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(ctx, 60, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if res.Completed+res.Dropped != res.Intended {
		t.Errorf("accounting: intended %d != completed %d + dropped %d",
			res.Intended, res.Completed, res.Dropped)
	}
	if res.Overall.Classes["ok"] != res.Completed {
		t.Errorf("unhealthy outcomes against an idle server: %v", res.Overall.Classes)
	}
	if len(res.Endpoints) != 3 {
		t.Errorf("endpoints driven: %v (want all three)", res.Endpoints)
	}

	after, err := g.ScrapeSettled(ctx, before, res.Completed-res.NetworkErrors)
	if err != nil {
		t.Fatal(err)
	}
	cv := loadgen.CrossValidate(before, after, res, 0)
	if !cv.CountsAgree {
		t.Errorf("client/server counts disagree: %v", cv.Mismatches)
	}
}

// TestRunDeterministicWorkload pins that the seed fixes the arrival count's
// workload draws: two runs with one seed hit the same endpoints in the same
// proportions (the schedule itself depends on wall-clock only for pacing).
func TestRunDeterministicWorkload(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		counts[r.URL.Path]++
		mu.Unlock()
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	run := func() map[string]int {
		mu.Lock()
		for k := range counts {
			delete(counts, k)
		}
		mu.Unlock()
		g, err := loadgen.New(loadgen.Config{
			Target: srv.URL,
			Mix:    []loadgen.MixEntry{{Op: loadgen.OpSearch, Weight: 1}, {Op: loadgen.OpTopK, Weight: 1}},
			Seed:   42,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Run(context.Background(), 200, 250*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		out := map[string]int{}
		for k, v := range counts {
			out[k] = v
		}
		return out
	}
	a, b := run(), run()
	for path := range a {
		if a[path] != b[path] {
			t.Errorf("seeded runs diverge at %s: %d vs %d", path, a[path], b[path])
		}
	}
}

// tokenBucketServer fakes a shapeserver with a crisp capacity: requests are
// admitted from a token bucket refilled at rate qps (burst capacity burst)
// and answered instantly; everything else is shed with 429. It exposes the
// same /metrics counter families the real server does, so Scrape and the
// knee search run against it unchanged — with a capacity known in advance.
type tokenBucketServer struct {
	mu       sync.Mutex
	tokens   float64
	last     time.Time
	rate     float64
	burst    float64
	ok       atomic.Int64
	rejected atomic.Int64
}

func (s *tokenBucketServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		now := time.Now()
		if !s.last.IsZero() {
			s.tokens += now.Sub(s.last).Seconds() * s.rate
			if s.tokens > s.burst {
				s.tokens = s.burst
			}
		}
		s.last = now
		admit := s.tokens >= 1
		if admit {
			s.tokens--
		}
		s.mu.Unlock()
		if !admit {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		s.ok.Add(1)
		w.Write([]byte(`{"results":[]}`))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		ok, rej := s.ok.Load(), s.rejected.Load()
		fmt.Fprintf(w, "# HELP shapeserver_endpoint_requests_total Terminal request outcomes.\n")
		fmt.Fprintf(w, "# TYPE shapeserver_endpoint_requests_total counter\n")
		fmt.Fprintf(w, "shapeserver_endpoint_requests_total{endpoint=\"search\",class=\"ok\"} %d\n", ok)
		fmt.Fprintf(w, "shapeserver_endpoint_requests_total{endpoint=\"search\",class=\"rejected\"} %d\n", rej)
		fmt.Fprintf(w, "# HELP shapeserver_admitted_total Requests granted a slot.\n")
		fmt.Fprintf(w, "# TYPE shapeserver_admitted_total counter\n")
		fmt.Fprintf(w, "shapeserver_admitted_total %d\n", ok)
		fmt.Fprintf(w, "# HELP shapeserver_rejected_total Requests shed with 429.\n")
		fmt.Fprintf(w, "# TYPE shapeserver_rejected_total counter\n")
		fmt.Fprintf(w, "shapeserver_rejected_total %d\n", rej)
	})
	return mux
}

// TestFindKneeBracketsCapacity runs the full ramp-and-bisect search against
// a fake server whose capacity is known (a 50 qps token bucket) and checks
// the reported knee brackets it, every step cross-validates, and the first
// failing step shows non-zero shedding.
func TestFindKneeBracketsCapacity(t *testing.T) {
	fake := &tokenBucketServer{rate: 50, burst: 10, tokens: 10}
	ts := httptest.NewServer(fake.handler())
	defer ts.Close()

	g, err := loadgen.New(loadgen.Config{Target: ts.URL, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sat, err := g.FindKnee(context.Background(), loadgen.SaturationConfig{
		StartQPS:     8,
		MaxQPS:       512,
		StepDuration: 500 * time.Millisecond,
		SLO:          loadgen.SLO{MaxErrorFraction: 0.05},
		RelTolerance: 0.5,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if !sat.Found {
		t.Fatalf("knee not found: %+v", sat)
	}
	// The bucket admits 50/s steady state: rates well under pass, well over
	// fail. The bracket must straddle the true capacity.
	if sat.KneeQPS < 16 || sat.KneeQPS > 80 {
		t.Errorf("knee %.1f qps implausible for a 50 qps bucket", sat.KneeQPS)
	}
	if sat.FirstFailQPS <= sat.KneeQPS {
		t.Errorf("bracket inverted: knee %.1f, first fail %.1f", sat.KneeQPS, sat.FirstFailQPS)
	}
	if sat.RejectedFractionAtFail <= 0 {
		t.Errorf("first failing step shows no 429s: %+v", sat)
	}
	for i, step := range sat.Steps {
		if step.CrossValidation == nil || !step.CrossValidation.CountsAgree {
			t.Errorf("step %d failed cross-validation: %+v", i, step.CrossValidation)
		}
	}
}
