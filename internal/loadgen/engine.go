package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Run offers open-loop load at qps for d. Arrivals are Poisson (exponential
// inter-arrival gaps drawn from the seeded generator) and every request's
// latency is charged from its intended arrival time, so a stalled server
// shows up as long latencies, not as a quietly reduced request count.
//
// Run waits for every in-flight request to finish before returning, so the
// result accounts for each intended arrival exactly once (completed, network
// error, or dropped). The context cancels the arrival process early; already
// launched requests still run to their own deadlines.
func (g *Generator) Run(ctx context.Context, qps float64, d time.Duration) (RunResult, error) {
	if qps <= 0 {
		return RunResult{}, fmt.Errorf("loadgen: offered rate %v <= 0", qps)
	}
	if d <= 0 {
		return RunResult{}, fmt.Errorf("loadgen: duration %v <= 0", d)
	}

	rec := newRecorder()
	// One seeded source drives both the arrival process and the workload
	// draws, all from the scheduler goroutine — reproducible without locks.
	rng := rand.New(rand.NewSource(g.cfg.Seed))

	var (
		wg          sync.WaitGroup
		outstanding atomic.Int64
		intended    int64
	)
	start := time.Now()
	var offset time.Duration // intended arrival offset from start
	for {
		// Exponential gap with mean 1/qps: a Poisson arrival process.
		offset += time.Duration(rng.ExpFloat64() / qps * float64(time.Second))
		if offset >= d {
			break
		}
		intendedAt := start.Add(offset)
		if sleep := time.Until(intendedAt); sleep > 0 {
			select {
			case <-time.After(sleep):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		intended++

		// Draw the workload for this arrival on the scheduler goroutine so
		// the sequence depends only on the seed, not on goroutine timing.
		op := g.mixOps[len(g.mixOps)-1]
		u := rng.Float64()
		for i, c := range g.cum {
			if u < c {
				op = g.mixOps[i]
				break
			}
		}
		queryIndex := 0
		if g.cfg.RepeatFraction < 1 && (g.cfg.RepeatFraction == 0 || rng.Float64() >= g.cfg.RepeatFraction) {
			if g.cfg.DBSize > 1 {
				queryIndex = 1 + rng.Intn(g.cfg.DBSize-1)
			}
		}
		body := g.RequestBody(op, queryIndex, g.cfg.TimeoutMS)

		if outstanding.Load() >= int64(g.cfg.MaxOutstanding) {
			// The client itself is saturated. Shedding here keeps the
			// generator honest (it never silently slows the arrival process)
			// but the run is flagged via Dropped.
			rec.drop()
			continue
		}
		outstanding.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer outstanding.Add(-1)
			rec.observe(g.Do(ctx, op, body, intendedAt))
		}()
	}
	wg.Wait()
	return rec.result(qps, time.Since(start), intended), nil
}
