package loadgen

import (
	"context"
	"fmt"
	"time"
)

// SLO is the pass/fail objective a load step is judged against.
type SLO struct {
	// P99 bounds the overall client-observed p99 latency (intended-start
	// accounting, so queueing counts). Zero disables the latency check.
	P99 time.Duration
	// MaxErrorFraction bounds the fraction of intended arrivals that ended
	// badly: server-attributable classes (rejected, timeout, server),
	// network errors, and client-side drops. Zero means any bad outcome
	// fails the step.
	MaxErrorFraction float64
}

// Check judges one run against the SLO, returning one violation string per
// broken objective (empty: the run passed).
func (s SLO) Check(res RunResult) []string {
	var out []string
	if s.P99 > 0 {
		p99 := time.Duration(res.Overall.P99MS * float64(time.Millisecond))
		if p99 > s.P99 {
			out = append(out, fmt.Sprintf("p99 %.1fms > objective %.1fms",
				res.Overall.P99MS, float64(s.P99)/float64(time.Millisecond)))
		}
	}
	bad := res.Overall.Classes["rejected"] + res.Overall.Classes["timeout"] +
		res.Overall.Classes["server"] + res.Overall.Classes[ClassNetwork] + res.Dropped
	if res.Intended > 0 {
		frac := float64(bad) / float64(res.Intended)
		if frac > s.MaxErrorFraction {
			out = append(out, fmt.Sprintf("error fraction %.4f > objective %.4f (%d bad of %d intended)",
				frac, s.MaxErrorFraction, bad, res.Intended))
		}
	}
	return out
}

// SaturationConfig shapes a knee search.
type SaturationConfig struct {
	// StartQPS seeds the ramp (default 4); MaxQPS caps it (default 4096) —
	// hitting the cap without an SLO failure means the server's knee is
	// beyond what this client can measure.
	StartQPS float64
	MaxQPS   float64
	// StepDuration is how long each probe runs (default 3s). Short steps
	// ramp fast but sample the tail thinly; capacity reports should use
	// at least ~10s.
	StepDuration time.Duration
	// SLO judges each step.
	SLO SLO
	// RelTolerance stops the bisection once (fail-pass)/pass is below it
	// (default 0.2 — knee known to within 20%).
	RelTolerance float64
	// CountTolerance is passed through to each step's cross-validation.
	CountTolerance int64
}

func (c SaturationConfig) withDefaults() SaturationConfig {
	if c.StartQPS <= 0 {
		c.StartQPS = 4
	}
	if c.MaxQPS <= 0 {
		c.MaxQPS = 4096
	}
	if c.StepDuration <= 0 {
		c.StepDuration = 3 * time.Second
	}
	if c.RelTolerance <= 0 {
		c.RelTolerance = 0.2
	}
	return c
}

// SaturationResult is the outcome of a knee search.
type SaturationResult struct {
	// Found is true when the search bracketed the knee: KneeQPS is the
	// highest probed rate that passed the SLO, FirstFailQPS the lowest that
	// failed. False means every rate up to the cap passed (KneeQPS then
	// holds the cap, a lower bound on capacity).
	Found        bool    `json:"found"`
	KneeQPS      float64 `json:"knee_qps"`
	FirstFailQPS float64 `json:"first_fail_qps,omitempty"`
	// RejectedFractionAtFail is the 429 share of intended arrivals at the
	// first failing rate — non-zero confirms the knee is admission-control
	// shedding rather than a client artifact.
	RejectedFractionAtFail float64 `json:"rejected_fraction_at_fail,omitempty"`
	// Steps records every probe in execution order, each with its scrape
	// delta and cross-validation attached.
	Steps []RunResult `json:"steps"`
}

// RunValidated runs one rate bracketed by /metrics scrapes and attaches the
// server delta and the client/server cross-validation to the result. This is
// the unit FindKnee probes with, and the whole of -mode fixed.
func (g *Generator) RunValidated(ctx context.Context, qps float64, d time.Duration, tol int64) (RunResult, error) {
	before, err := g.Scrape(ctx)
	if err != nil {
		return RunResult{}, err
	}
	res, err := g.Run(ctx, qps, d)
	if err != nil {
		return RunResult{}, err
	}
	after, err := g.ScrapeSettled(ctx, before, res.Completed-res.NetworkErrors)
	if err != nil {
		return RunResult{}, err
	}
	res.ServerDelta = deltaSnapshots(before, after)
	res.CrossValidation = CrossValidate(before, after, res, tol)
	return res, nil
}

// FindKnee searches for the maximum sustainable rate under the SLO: a
// doubling ramp from StartQPS until the first failing rate, then bisection
// of the bracket down to RelTolerance. Every step is scraped and
// cross-validated against the server's counters; a count disagreement aborts
// the search, because a capacity number derived from telemetry that does not
// reconcile is worse than no number.
//
// log, when non-nil, receives one line per step (Printf-style).
func (g *Generator) FindKnee(ctx context.Context, sc SaturationConfig, logf func(format string, args ...any)) (SaturationResult, error) {
	sc = sc.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var sat SaturationResult

	step := func(qps float64) (RunResult, bool, error) {
		res, err := g.RunValidated(ctx, qps, sc.StepDuration, sc.CountTolerance)
		if err != nil {
			return RunResult{}, false, err
		}
		res.SLOViolations = sc.SLO.Check(res)
		sat.Steps = append(sat.Steps, res)
		pass := len(res.SLOViolations) == 0
		verdict := "pass"
		if !pass {
			verdict = fmt.Sprintf("FAIL (%v)", res.SLOViolations)
		}
		logf("step %.1f qps: achieved %.1f, p99 %.1fms, classes %v: %s",
			qps, res.AchievedQPS, res.Overall.P99MS, res.Overall.Classes, verdict)
		if !res.CrossValidation.CountsAgree {
			return res, pass, fmt.Errorf(
				"loadgen: client/server count mismatch at %.1f qps: %v",
				qps, res.CrossValidation.Mismatches)
		}
		return res, pass, nil
	}

	// Ramp: double until the SLO breaks or the cap is reached.
	lo, hi := 0.0, 0.0 // lo: last passing rate, hi: first failing rate
	var failRes RunResult
	for qps := sc.StartQPS; ; qps *= 2 {
		if qps > sc.MaxQPS {
			qps = sc.MaxQPS
		}
		res, pass, err := step(qps)
		if err != nil {
			return sat, err
		}
		if pass {
			lo = qps
			if qps >= sc.MaxQPS {
				sat.KneeQPS = lo
				logf("no SLO failure up to cap %.1f qps; knee is beyond measurement range", sc.MaxQPS)
				return sat, nil
			}
			continue
		}
		hi, failRes = qps, res
		break
	}

	// Bisect the bracket. lo == 0 means even StartQPS failed; report that
	// honestly rather than probing below it.
	for lo > 0 && (hi-lo)/lo > sc.RelTolerance {
		mid := (lo + hi) / 2
		res, pass, err := step(mid)
		if err != nil {
			return sat, err
		}
		if pass {
			lo = mid
		} else {
			hi, failRes = mid, res
		}
	}

	sat.Found = true
	sat.KneeQPS = lo
	sat.FirstFailQPS = hi
	if failRes.Intended > 0 {
		sat.RejectedFractionAtFail = float64(failRes.Overall.Classes["rejected"]) / float64(failRes.Intended)
	}
	logf("knee: %.1f qps passes, %.1f qps fails (rejected fraction at fail %.4f)",
		sat.KneeQPS, sat.FirstFailQPS, sat.RejectedFractionAtFail)
	return sat, nil
}
