package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty target", Config{}},
		{"unknown op", Config{Target: "http://x", Mix: []MixEntry{{Op: "delete", Weight: 1}}}},
		{"negative weight", Config{Target: "http://x", Mix: []MixEntry{{Op: OpSearch, Weight: -1}}}},
		{"zero weights", Config{Target: "http://x", Mix: []MixEntry{{Op: OpSearch, Weight: 0}}}},
		{"repeat fraction", Config{Target: "http://x", RepeatFraction: 1.5}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	g, err := New(Config{Target: "http://x"})
	if err != nil {
		t.Fatalf("minimal config: %v", err)
	}
	if g.cfg.MaxOutstanding != 4096 || g.cfg.K != 3 || g.cfg.Seed != 1 {
		t.Errorf("defaults not filled: %+v", g.cfg)
	}
	mix := g.Mix()
	if mix["search"] != 1 {
		t.Errorf("default mix = %v, want all search", mix)
	}
}

func TestMixNormalization(t *testing.T) {
	g, err := New(Config{Target: "http://x", Mix: []MixEntry{
		{Op: OpSearch, Weight: 6},
		{Op: OpTopK, Weight: 3},
		{Op: OpRange, Weight: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	mix := g.Mix()
	for op, want := range map[string]float64{"search": 0.6, "topk": 0.3, "range": 0.1} {
		if got := mix[op]; got < want-1e-9 || got > want+1e-9 {
			t.Errorf("mix[%s] = %v, want %v", op, got, want)
		}
	}
}

func TestRequestBody(t *testing.T) {
	g, err := New(Config{Target: "http://x", K: 5, Threshold: 1.25})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(g.RequestBody(OpSearch, 7, 250), &m); err != nil {
		t.Fatal(err)
	}
	if m["query_index"] != float64(7) || m["timeout_ms"] != float64(250) {
		t.Errorf("search body = %v", m)
	}
	if _, ok := m["k"]; ok {
		t.Errorf("search body carries k: %v", m)
	}
	m = nil // Unmarshal merges into a live map; start fresh per body
	if err := json.Unmarshal(g.RequestBody(OpTopK, 0, 0), &m); err != nil {
		t.Fatal(err)
	}
	if m["k"] != float64(5) {
		t.Errorf("topk body = %v", m)
	}
	if _, ok := m["timeout_ms"]; ok {
		t.Errorf("zero timeout emitted: %v", m)
	}
	m = nil
	if err := json.Unmarshal(g.RequestBody(OpRange, 0, 0), &m); err != nil {
		t.Fatal(err)
	}
	if m["threshold"] != 1.25 {
		t.Errorf("range body = %v", m)
	}
}

// TestDoChargesFromIntended pins the coordinated-omission guarantee: latency
// is measured from the intended arrival time, so scheduling delay between
// intended and actual send shows up in the number.
func TestDoChargesFromIntended(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"results":[]}`))
	}))
	defer srv.Close()
	g, err := New(Config{Target: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	intended := time.Now().Add(-100 * time.Millisecond)
	out := g.Do(context.Background(), OpSearch, g.RequestBody(OpSearch, 0, 0), intended)
	if out.Err != nil {
		t.Fatalf("Do: %v", out.Err)
	}
	if out.Status != 200 || out.Class != "ok" {
		t.Errorf("status %d class %q", out.Status, out.Class)
	}
	if out.Latency < 100*time.Millisecond {
		t.Errorf("latency %v charged from send, not intended start (want >= 100ms)", out.Latency)
	}
}

func TestDoNetworkError(t *testing.T) {
	// A closed server: connection refused, no HTTP status.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close()
	g, err := New(Config{Target: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	out := g.Do(context.Background(), OpSearch, nil, time.Now())
	if out.Err == nil || out.Class != ClassNetwork || out.Status != 0 {
		t.Errorf("outcome = %+v, want network error", out)
	}
}

func TestRecorderReport(t *testing.T) {
	rec := newRecorder()
	for i := 0; i < 99; i++ {
		rec.observe(Outcome{Op: OpSearch, Status: 200, Class: "ok", Latency: time.Millisecond})
	}
	rec.observe(Outcome{Op: OpSearch, Status: 429, Class: "rejected", Latency: 900 * time.Millisecond})
	rec.observe(Outcome{Op: OpTopK, Status: 0, Class: ClassNetwork, Latency: 10 * time.Millisecond, Err: context.DeadlineExceeded})
	rec.drop()

	res := rec.result(50, 2*time.Second, 102)
	if res.Completed != 101 || res.Intended != 102 || res.Dropped != 1 || res.NetworkErrors != 1 {
		t.Errorf("counts: %+v", res)
	}
	if res.AchievedQPS < 50 || res.AchievedQPS > 51 {
		t.Errorf("achieved qps = %v", res.AchievedQPS)
	}
	search := res.Endpoints["search"]
	if search.Requests != 100 || search.Classes["ok"] != 99 || search.Classes["rejected"] != 1 {
		t.Errorf("search report: %+v", search)
	}
	// p50 of 99x1ms + 1x900ms sits in the 1ms power-of-two bucket (bound
	// 2^20ns ≈ 1.05ms); so does p99 (rank 99 of 100), while p999 (rank 100)
	// must reach the 900ms outlier's bucket.
	if search.P50MS > 2 {
		t.Errorf("p50 = %vms, want ~1ms bucket", search.P50MS)
	}
	if search.P99MS > 2 {
		t.Errorf("p99 = %vms, want ~1ms bucket (rank 99 of 100)", search.P99MS)
	}
	if search.P999MS < 500 {
		t.Errorf("p999 = %vms, want the 900ms outlier's bucket", search.P999MS)
	}
	if search.MaxMS < 899 || search.MaxMS > 901 {
		t.Errorf("max = %vms", search.MaxMS)
	}
	if res.Overall.Requests != 101 || res.Overall.Classes[ClassNetwork] != 1 {
		t.Errorf("overall: %+v", res.Overall)
	}
}

func snap(counts map[string]map[string]int64, admitted, rejected int64) *ServerSnapshot {
	return &ServerSnapshot{Counts: counts, Admitted: admitted, Rejected: rejected, WindowP99S: map[string]float64{}}
}

func TestCrossValidateAgreement(t *testing.T) {
	before := snap(map[string]map[string]int64{"search": {"ok": 10}}, 10, 0)
	after := snap(map[string]map[string]int64{"search": {"ok": 110, "rejected": 5}}, 110, 5)
	res := RunResult{
		Intended:  105,
		Completed: 105,
		Endpoints: map[string]EndpointReport{
			"search": {Requests: 105, Classes: map[string]int64{"ok": 100, "rejected": 5}},
		},
	}
	cv := CrossValidate(before, after, res, 0)
	if !cv.CountsAgree {
		t.Errorf("want agreement, got mismatches %v", cv.Mismatches)
	}
}

func TestCrossValidateMismatch(t *testing.T) {
	before := snap(map[string]map[string]int64{"search": {}}, 0, 0)
	after := snap(map[string]map[string]int64{"search": {"ok": 90}}, 90, 0)
	res := RunResult{
		Intended:  100,
		Completed: 100,
		Endpoints: map[string]EndpointReport{
			"search": {Requests: 100, Classes: map[string]int64{"ok": 100}},
		},
	}
	cv := CrossValidate(before, after, res, 2)
	if cv.CountsAgree {
		t.Error("10 missing requests beyond tolerance 2: want mismatch")
	}
	if len(cv.Mismatches) == 0 {
		t.Error("mismatch list empty")
	}
}

func TestCrossValidateNetworkSlack(t *testing.T) {
	// The client wrote 3 requests off as network errors; the server saw and
	// counted them as ok. Counts must still reconcile via the slack.
	before := snap(map[string]map[string]int64{"search": {}}, 0, 0)
	after := snap(map[string]map[string]int64{"search": {"ok": 100}}, 100, 0)
	res := RunResult{
		Intended:      100,
		Completed:     100,
		NetworkErrors: 3,
		Endpoints: map[string]EndpointReport{
			"search": {Requests: 100, Classes: map[string]int64{"ok": 97, ClassNetwork: 3}},
		},
	}
	cv := CrossValidate(before, after, res, 0)
	if !cv.CountsAgree {
		t.Errorf("network slack not applied: %v", cv.Mismatches)
	}
}

func TestCrossValidateLatency(t *testing.T) {
	before := snap(map[string]map[string]int64{"search": {}}, 0, 0)
	after := snap(map[string]map[string]int64{"search": {"ok": 50}}, 50, 0)
	after.WindowP99S["search"] = 0.010 // 10ms
	res := RunResult{
		Intended:  50,
		Completed: 50,
		Endpoints: map[string]EndpointReport{
			"search": {Requests: 50, Classes: map[string]int64{"ok": 50}, P99MS: 16},
		},
	}
	cv := CrossValidate(before, after, res, 0)
	if !cv.LatencyChecked || !cv.LatencyAgree {
		t.Errorf("16ms client vs 10ms server should agree: %+v", cv)
	}

	res.Endpoints["search"] = EndpointReport{
		Requests: 50, Classes: map[string]int64{"ok": 50}, P99MS: 200,
	}
	cv = CrossValidate(before, after, res, 0)
	if !cv.LatencyChecked || cv.LatencyAgree {
		t.Errorf("200ms client vs 10ms server window: want latency mismatch, got %+v", cv)
	}

	// Error classes disqualify the endpoint from the latency check.
	res.Endpoints["search"] = EndpointReport{
		Requests: 50, Classes: map[string]int64{"ok": 49, "rejected": 1}, P99MS: 200,
	}
	after.Counts["search"] = map[string]int64{"ok": 49, "rejected": 1}
	cv = CrossValidate(before, after, res, 0)
	if cv.LatencyChecked {
		t.Errorf("endpoint with rejects must skip the latency check: %+v", cv)
	}
}

func TestSLOCheck(t *testing.T) {
	slo := SLO{P99: 50 * time.Millisecond, MaxErrorFraction: 0.01}
	good := RunResult{
		Intended: 1000,
		Overall:  EndpointReport{Requests: 1000, Classes: map[string]int64{"ok": 1000}, P99MS: 20},
	}
	if v := slo.Check(good); len(v) != 0 {
		t.Errorf("clean run violates: %v", v)
	}
	slow := good
	slow.Overall.P99MS = 80
	if v := slo.Check(slow); len(v) != 1 {
		t.Errorf("slow run: %v", v)
	}
	shed := RunResult{
		Intended: 1000,
		Overall:  EndpointReport{Requests: 1000, Classes: map[string]int64{"ok": 900, "rejected": 100}, P99MS: 20},
	}
	if v := slo.Check(shed); len(v) != 1 {
		t.Errorf("10%% rejected run: %v", v)
	}
	// Client-side drops count against the error budget too.
	dropped := RunResult{
		Intended: 1000,
		Dropped:  100,
		Overall:  EndpointReport{Requests: 900, Classes: map[string]int64{"ok": 900}, P99MS: 20},
	}
	if v := slo.Check(dropped); len(v) != 1 {
		t.Errorf("dropped-arrivals run: %v", v)
	}
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	date := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	path := ReportPath(dir, date)
	if want := filepath.Join(dir, "LOAD_2026-08-07.json"); path != want {
		t.Fatalf("path = %s, want %s", path, want)
	}
	rep := &Report{
		Date:    "2026-08-07",
		Target:  "http://127.0.0.1:8321",
		Mode:    "ramp",
		KneeQPS: 96,
		Saturation: &SaturationResult{
			Found: true, KneeQPS: 96, FirstFailQPS: 128, RejectedFractionAtFail: 0.11,
		},
	}
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.KneeQPS != 96 || !got.Saturation.Found || got.Saturation.RejectedFractionAtFail != 0.11 {
		t.Errorf("round trip: %+v", got)
	}
}
