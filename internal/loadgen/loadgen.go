// Package loadgen drives a shapeserver with open-loop load and verifies the
// server's own telemetry against what the client observed.
//
// Open-loop means arrivals follow a Poisson process at a configured offered
// rate, independent of how fast the server answers: a slow server does not
// slow the generator down, it accumulates queueing — exactly what real
// traffic does to a saturated service. Closed-loop generators (fixed worker
// pools that wait for each response) silently throttle themselves at
// saturation and report flattering latencies; this package exists to measure
// the unflattering truth.
//
// Latency is coordinated-omission-safe: every request has an intended start
// time drawn from the arrival process, and its latency is measured from that
// intended start, not from when the request actually went out. Scheduler
// delay — client-side or server-side — is charged to the measurement instead
// of being quietly dropped.
//
// Each run can be cross-validated against the server's /metrics: the
// cumulative shapeserver_endpoint_requests_total counters are scraped before
// and after (through internal/obs/expofmt) and their deltas must agree with
// the client's own per-endpoint, per-class tallies. A disagreement beyond
// the stated tolerance is a loud failure — it means the telemetry layer the
// operations runbooks depend on is lying.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/ops"
)

// Op names one shapeserver /v1 endpoint.
type Op string

// The three search endpoints a workload mix draws from.
const (
	OpSearch Op = "search"
	OpTopK   Op = "topk"
	OpRange  Op = "range"
)

// ClassNetwork is the client-only error class for requests that got no HTTP
// response at all (connection refused, client-side timeout). The server may
// still have counted such a request under its own classes, so count
// cross-validation treats network errors as slack, not as a mismatch.
const ClassNetwork = "network"

// MixEntry weights one endpoint inside a workload mix.
type MixEntry struct {
	Op     Op
	Weight float64
}

// Config describes the workload shape; Run and FindKnee add the rate.
type Config struct {
	// Target is the server base URL, e.g. "http://127.0.0.1:8321".
	Target string

	// Mix is the endpoint mix, normalized by total weight (default: all
	// /v1/search).
	Mix []MixEntry

	// RepeatFraction is the fraction of requests that reuse one fixed query
	// spec (query_index 0) and therefore hit the session pool after its
	// first build; the rest draw a random query_index in [1, DBSize), mostly
	// missing the pool. Zero means every request draws randomly.
	RepeatFraction float64

	// DBSize is the number of rows query_index may address (Discover fills
	// it from /livez).
	DBSize int

	// TimeoutMS is the per-request deadline passed to the server as
	// timeout_ms (0: server default). The HTTP client allows an extra grace
	// on top before declaring a network error.
	TimeoutMS int

	// K and Threshold parameterize the topk and range endpoints (defaults 3
	// and 2.0; range hits are irrelevant to load, only the work matters).
	K         int
	Threshold float64

	// Seed makes the arrival process and workload draws reproducible
	// (default 1).
	Seed int64

	// MaxOutstanding bounds concurrent in-flight requests to protect the
	// client process (default 4096). Arrivals beyond it are dropped and
	// reported — a dropped arrival means the generator, not the server, was
	// the bottleneck, and the run's numbers understate the offered load.
	MaxOutstanding int

	// Client overrides the HTTP client (tests). The default client pools
	// aggressively so connection churn does not pollute the latency signal.
	Client *http.Client
}

// Generator produces open-loop load for one workload shape.
type Generator struct {
	cfg    Config
	client *http.Client
	cum    []float64 // cumulative normalized mix weights
	mixOps []Op
}

// New validates the config and builds a generator.
func New(cfg Config) (*Generator, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("loadgen: empty target")
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = []MixEntry{{Op: OpSearch, Weight: 1}}
	}
	var total float64
	for _, m := range cfg.Mix {
		switch m.Op {
		case OpSearch, OpTopK, OpRange:
		default:
			return nil, fmt.Errorf("loadgen: unknown endpoint %q in mix", m.Op)
		}
		if m.Weight < 0 {
			return nil, fmt.Errorf("loadgen: negative weight for %q", m.Op)
		}
		total += m.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("loadgen: mix weights sum to zero")
	}
	if cfg.RepeatFraction < 0 || cfg.RepeatFraction > 1 {
		return nil, fmt.Errorf("loadgen: repeat fraction %v outside [0,1]", cfg.RepeatFraction)
	}
	if cfg.DBSize < 1 {
		cfg.DBSize = 1
	}
	if cfg.K <= 0 {
		cfg.K = 3
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 2.0
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 4096
	}
	g := &Generator{cfg: cfg, client: cfg.Client}
	if g.client == nil {
		grace := 10 * time.Second
		if cfg.TimeoutMS > 0 {
			grace += time.Duration(cfg.TimeoutMS) * time.Millisecond
		} else {
			grace += 60 * time.Second // server default cap
		}
		g.client = &http.Client{
			Timeout: grace,
			Transport: &http.Transport{
				MaxIdleConns:        4096,
				MaxIdleConnsPerHost: 1024,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	var cum float64
	for _, m := range cfg.Mix {
		cum += m.Weight / total
		g.cum = append(g.cum, cum)
		g.mixOps = append(g.mixOps, m.Op)
	}
	return g, nil
}

// Mix returns the normalized endpoint mix (for reports).
func (g *Generator) Mix() map[string]float64 {
	out := map[string]float64{}
	prev := 0.0
	for i, op := range g.mixOps {
		out[string(op)] += g.cum[i] - prev
		prev = g.cum[i]
	}
	return out
}

// RequestBody builds the JSON body of one request against op. queryIndex
// selects the query shape; timeoutMS > 0 sets the server-side deadline.
func (g *Generator) RequestBody(op Op, queryIndex, timeoutMS int) []byte {
	m := map[string]any{"query_index": queryIndex}
	if timeoutMS > 0 {
		m["timeout_ms"] = timeoutMS
	}
	switch op {
	case OpTopK:
		m["k"] = g.cfg.K
	case OpRange:
		m["threshold"] = g.cfg.Threshold
	}
	b, err := json.Marshal(m)
	if err != nil {
		panic(err) // map of scalars: cannot fail
	}
	return b
}

// Outcome is one finished request as the client saw it.
type Outcome struct {
	Op     Op
	Status int // 0 when no HTTP response arrived
	// Class is the ops error-class vocabulary plus ClassNetwork.
	Class string
	// Latency runs from the intended start (the arrival-process time) to
	// full response receipt — queueing anywhere in between is charged here.
	Latency    time.Duration
	RetryAfter string // Retry-After header, 429 shed responses carry it
	Err        error  // transport error, nil otherwise
}

// Do executes one request against op with the given body, charging latency
// from intended. It is the single request path for both the open-loop engine
// and targeted integration tests.
func (g *Generator) Do(ctx context.Context, op Op, body []byte, intended time.Time) Outcome {
	out := Outcome{Op: op}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		g.cfg.Target+"/v1/"+string(op), bytes.NewReader(body))
	if err != nil {
		out.Class, out.Err, out.Latency = ClassNetwork, err, time.Since(intended)
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		out.Class, out.Err, out.Latency = ClassNetwork, err, time.Since(intended)
		return out
	}
	// Latency covers the full response body: a result the client has not
	// received yet is not served.
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // body errors surface as latency truth, not failures
	resp.Body.Close()
	out.Latency = time.Since(intended)
	out.Status = resp.StatusCode
	out.Class = ops.ErrorClass(resp.StatusCode)
	out.RetryAfter = resp.Header.Get("Retry-After")
	return out
}

// endpointRec accumulates one endpoint's outcomes during a run.
type endpointRec struct {
	hist     *obs.Histogram
	classes  map[string]int64
	requests int64
	maxNS    int64
	sumNS    int64
}

func newEndpointRec() *endpointRec {
	return &endpointRec{hist: &obs.Histogram{}, classes: map[string]int64{}}
}

// recorder gathers a run's outcomes. One mutex per observation is fine here:
// this is per-request accounting at load-generator rates, not a hot kernel.
type recorder struct {
	mu          sync.Mutex
	eps         map[Op]*endpointRec
	overall     *endpointRec
	networkErrs int64
	dropped     int64
}

func newRecorder() *recorder {
	return &recorder{eps: map[Op]*endpointRec{}, overall: newEndpointRec()}
}

func (r *recorder) observe(out Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep := r.eps[out.Op]
	if ep == nil {
		ep = newEndpointRec()
		r.eps[out.Op] = ep
	}
	ns := out.Latency.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	for _, rec := range [2]*endpointRec{ep, r.overall} {
		rec.requests++
		rec.classes[out.Class]++
		rec.hist.Observe(ns)
		rec.sumNS += ns
		if ns > rec.maxNS {
			rec.maxNS = ns
		}
	}
	if out.Class == ClassNetwork {
		r.networkErrs++
	}
}

func (r *recorder) drop() {
	r.mu.Lock()
	r.dropped++
	r.mu.Unlock()
}

// EndpointReport summarizes one endpoint's client-observed outcomes.
type EndpointReport struct {
	Requests int64            `json:"requests"`
	Classes  map[string]int64 `json:"classes"`
	// Quantiles are bucket-resolution (power-of-two bounds, the same
	// bucketing as the server's RED windows), measured from intended start.
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// quantileNS returns the nearest-rank q-quantile bound (ns) of h; the
// overflow bucket resolves to maxNS so a blown-out tail still reports a
// finite number.
func quantileNS(h *obs.Histogram, maxNS int64, q float64) int64 {
	total := h.Count()
	if total <= 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.Count
		if cum >= rank {
			if b.UpperBound < 0 {
				return maxNS
			}
			return b.UpperBound
		}
	}
	return maxNS
}

func (e *endpointRec) report() EndpointReport {
	rep := EndpointReport{
		Requests: e.requests,
		Classes:  map[string]int64{},
		P50MS:    float64(quantileNS(e.hist, e.maxNS, 0.50)) / 1e6,
		P99MS:    float64(quantileNS(e.hist, e.maxNS, 0.99)) / 1e6,
		P999MS:   float64(quantileNS(e.hist, e.maxNS, 0.999)) / 1e6,
		MaxMS:    float64(e.maxNS) / 1e6,
	}
	for k, v := range e.classes {
		rep.Classes[k] = v
	}
	if e.requests > 0 {
		rep.MeanMS = float64(e.sumNS) / float64(e.requests) / 1e6
	}
	return rep
}

// RunResult is one completed run at a fixed offered rate.
type RunResult struct {
	OfferedQPS  float64 `json:"offered_qps"`
	DurationSec float64 `json:"duration_sec"`
	// Intended counts scheduled arrivals; Completed the requests that ran to
	// a terminal outcome (an HTTP response or a network error — so Intended
	// == Completed + Dropped); Dropped the arrivals shed client-side by
	// MaxOutstanding (generator saturation — treat the run as invalid for
	// capacity claims when non-zero).
	Intended      int64 `json:"intended"`
	Completed     int64 `json:"completed"`
	Dropped       int64 `json:"dropped,omitempty"`
	NetworkErrors int64 `json:"network_errors,omitempty"`
	// AchievedQPS is completed requests over the measurement window.
	AchievedQPS float64                   `json:"achieved_qps"`
	Endpoints   map[string]EndpointReport `json:"endpoints"`
	Overall     EndpointReport            `json:"overall"`
	// SLOViolations lists which objectives this run broke (empty: passed).
	SLOViolations []string `json:"slo_violations,omitempty"`
	// ServerDelta and CrossValidation are attached when the run was scraped
	// before and after; see CrossValidate.
	ServerDelta     *ServerDelta     `json:"server_delta,omitempty"`
	CrossValidation *CrossValidation `json:"cross_validation,omitempty"`
}

func (r *recorder) result(qps float64, elapsed time.Duration, intended int64) RunResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	res := RunResult{
		OfferedQPS:    qps,
		DurationSec:   elapsed.Seconds(),
		Intended:      intended,
		Dropped:       r.dropped,
		NetworkErrors: r.networkErrs,
		Endpoints:     map[string]EndpointReport{},
	}
	ops := make([]Op, 0, len(r.eps))
	for op := range r.eps {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		ep := r.eps[op]
		res.Endpoints[string(op)] = ep.report()
		res.Completed += ep.requests
	}
	res.Overall = r.overall.report()
	if elapsed > 0 {
		res.AchievedQPS = float64(res.Completed) / elapsed.Seconds()
	}
	return res
}
