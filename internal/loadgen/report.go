package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Workload records the workload shape a report was produced under, so a
// trajectory of LOAD_*.json files is comparable point to point.
type Workload struct {
	Mix            map[string]float64 `json:"mix"`
	RepeatFraction float64            `json:"repeat_fraction"`
	TimeoutMS      int                `json:"timeout_ms"`
	DBSize         int                `json:"db_size"`
	SeriesLen      int                `json:"series_len"`
	Seed           int64              `json:"seed"`
}

// SLOReport is the objective a report's runs were judged against, in
// JSON-friendly units.
type SLOReport struct {
	P99MS            float64 `json:"p99_ms"`
	MaxErrorFraction float64 `json:"max_error_fraction"`
}

// Report is one shapeload run's SLO report — the bench/LOAD_<date>.json
// schema. Exactly one of Fixed and Saturation is set, per Mode.
type Report struct {
	Date     string    `json:"date"` // UTC YYYY-MM-DD
	Target   string    `json:"target"`
	Mode     string    `json:"mode"` // "fixed" or "ramp"
	Workload Workload  `json:"workload"`
	SLO      SLOReport `json:"slo"`

	// Fixed holds the single run of -mode fixed.
	Fixed *RunResult `json:"fixed,omitempty"`
	// Saturation holds the knee search of -mode ramp; KneeQPS duplicates
	// its headline number at the top level for trajectory tooling.
	Saturation *SaturationResult `json:"saturation,omitempty"`
	KneeQPS    float64           `json:"knee_qps,omitempty"`
}

// ReportPath names the report file for a date inside dir: LOAD_<date>.json.
func ReportPath(dir string, date time.Time) string {
	return filepath.Join(dir, "LOAD_"+date.UTC().Format("2006-01-02")+".json")
}

// WriteReport writes the report atomically (temp file + rename) so a
// concurrent reader never sees a torn JSON document.
func WriteReport(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".load-*.json.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadReport loads a LOAD_*.json report.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	return &rep, nil
}
