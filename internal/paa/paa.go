// Package paa implements Piecewise Aggregate Approximation and the
// envelope-box lower bound used to prune disk reads for DTW queries
// (Section 4.2; the paper defers the details to Vlachos et al. [37], which
// indexes envelope MBRs against PAA-reduced candidates).
//
// A series of length n is reduced to D segment means. A query wedge's
// envelope is reduced to D boxes [min L, max U] per segment. For a candidate
// segment with mean c̄ and width w, Cauchy-Schwarz gives
//
//	sum_{i in seg} dist²(c_i, [L_i, U_i]) >= w · dist²(c̄, [L̂, Û]),
//
// so the box bound lower-bounds LB_Keogh, which lower-bounds ED (and, with a
// DTW-expanded envelope, DTW). Everything admissible stays admissible.
package paa

import (
	"fmt"
	"math"

	"lbkeogh/internal/envelope"
)

// BoundName is the stable stage tag for the PAA box bound in
// pruning-waterfall telemetry (explain plans, /metrics labels).
const BoundName = "paa"

// Bounds returns the D+1 segment boundaries for splitting a length-n series
// into D near-equal segments: segment s covers [bounds[s], bounds[s+1]).
func Bounds(n, D int) []int {
	if D < 1 || n < 1 {
		panic(fmt.Sprintf("paa: invalid n=%d D=%d", n, D))
	}
	if D > n {
		D = n
	}
	out := make([]int, D+1)
	for s := 0; s <= D; s++ {
		out[s] = s * n / D
	}
	return out
}

// Reduce returns the D segment means of x. D is clamped to len(x).
func Reduce(x []float64, D int) []float64 {
	b := Bounds(len(x), D)
	out := make([]float64, len(b)-1)
	for s := 0; s < len(out); s++ {
		var sum float64
		for i := b[s]; i < b[s+1]; i++ {
			sum += x[i]
		}
		out[s] = sum / float64(b[s+1]-b[s])
	}
	return out
}

// Box is the PAA reduction of an envelope: per segment, the mean of L and
// the mean of U. Means (rather than min/max) are admissible by the same
// Cauchy-Schwarz argument — if the candidate's segment mean exceeds the
// segment mean of U, then sum_i (c_i-U_i)²[c_i>U_i] >= sum_i max(0, c_i-U_i)
// clipped appropriately >= w·(c̄-Ū)² — and are substantially tighter (this
// is the envelope transform of Zhu & Shasha, which ref. [37] builds on).
type Box struct {
	Lo, Hi []float64
}

// ReduceEnvelope returns the D-segment PAA means of env's U and L.
func ReduceEnvelope(env envelope.Envelope, D int) Box {
	return Box{Lo: Reduce(env.L, D), Hi: Reduce(env.U, D)}
}

// LowerBound returns the admissible lower bound of LB_Keogh(c, env) given
// only the PAA means of c and the envelope box, for original length n.
// cMeans and box must share the same segment count derived from (n, D).
//
// This is a documented root-space API boundary: the index compares the
// returned bound against root-space distances, so the Sqrt happens here.
//
//lbkeogh:rootspace
//lbkeogh:lowerbound
func LowerBound(cMeans []float64, box Box, n int) float64 {
	D := len(cMeans)
	if len(box.Lo) != D || len(box.Hi) != D {
		panic(fmt.Sprintf("paa: box segments %d != means %d", len(box.Lo), D))
	}
	b := Bounds(n, D)
	var acc float64
	for s := 0; s < D; s++ {
		w := float64(b[s+1] - b[s])
		if cMeans[s] > box.Hi[s] {
			d := cMeans[s] - box.Hi[s]
			acc += w * d * d
		} else if cMeans[s] < box.Lo[s] {
			d := cMeans[s] - box.Lo[s]
			acc += w * d * d
		}
	}
	return math.Sqrt(acc)
}

// MinLowerBound returns the smallest LowerBound of cMeans against each box —
// the index-space bound against a whole wedge set W (the paper: "search for
// the best match to K envelopes in the wedge set W"). The min of admissible
// lower bounds is itself admissible for every member of every box.
//
//lbkeogh:lowerbound
func MinLowerBound(cMeans []float64, boxes []Box, n int) float64 {
	best := math.Inf(1)
	for _, bx := range boxes {
		if lb := LowerBound(cMeans, bx, n); lb < best {
			best = lb
		}
	}
	return best
}
