package paa

import (
	"math"
	"testing"
	"testing/quick"

	"lbkeogh/internal/dist"
	"lbkeogh/internal/envelope"
	"lbkeogh/internal/ts"
)

func TestBounds(t *testing.T) {
	b := Bounds(10, 4)
	want := []int{0, 2, 5, 7, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("Bounds(10,4) = %v, want %v", b, want)
		}
	}
	if got := Bounds(4, 10); len(got) != 5 {
		t.Fatalf("D should clamp to n: %v", got)
	}
}

func TestBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Bounds(0, 4)
}

func TestReduceExact(t *testing.T) {
	x := []float64{1, 3, 5, 7}
	got := Reduce(x, 2)
	if got[0] != 2 || got[1] != 6 {
		t.Fatalf("Reduce = %v, want [2 6]", got)
	}
	full := Reduce(x, 4)
	if !ts.Equal(full, x, 0) {
		t.Fatal("D = n reduction must be identity")
	}
}

func TestReduceUnequalSegments(t *testing.T) {
	x := []float64{2, 2, 4, 4, 4}
	got := Reduce(x, 2) // segments [0,2) and [2,5)
	if got[0] != 2 || got[1] != 4 {
		t.Fatalf("Reduce = %v, want [2 4]", got)
	}
}

func TestReduceEnvelopeContainsMeans(t *testing.T) {
	rng := ts.NewRand(1)
	set := [][]float64{ts.RandomWalk(rng, 40), ts.RandomWalk(rng, 40)}
	env := envelope.New(set...)
	box := ReduceEnvelope(env, 8)
	for _, s := range set {
		means := Reduce(s, 8)
		for i := range means {
			if means[i] > box.Hi[i]+1e-12 || means[i] < box.Lo[i]-1e-12 {
				t.Fatal("member PAA means must lie inside the envelope box")
			}
		}
	}
}

// The chain of admissibility: LB_PAA <= LB_Keogh <= ED(member).
func TestLowerBoundChain(t *testing.T) {
	rng := ts.NewRand(2)
	for trial := 0; trial < 30; trial++ {
		n := 48
		set := [][]float64{ts.RandomWalk(rng, n), ts.RandomWalk(rng, n), ts.RandomWalk(rng, n)}
		env := envelope.New(set...)
		c := ts.RandomWalk(rng, n)
		for _, D := range []int{1, 4, 8, 16, 48} {
			box := ReduceEnvelope(env, D)
			lbPAA := LowerBound(Reduce(c, D), box, n)
			lbKeogh, _ := envelope.LBKeogh(c, env, -1, nil)
			if lbPAA > lbKeogh+1e-9 {
				t.Fatalf("D=%d: LB_PAA %v exceeds LB_Keogh %v", D, lbPAA, lbKeogh)
			}
			for _, s := range set {
				if ed := dist.Euclidean(c, s, nil); lbPAA > ed+1e-9 {
					t.Fatalf("D=%d: LB_PAA %v exceeds member ED %v", D, lbPAA, ed)
				}
			}
		}
	}
}

// DTW variant: box bound of the DTW-expanded envelope lower-bounds DTW to
// every member.
func TestLowerBoundDTWChain(t *testing.T) {
	rng := ts.NewRand(3)
	for _, R := range []int{1, 4} {
		for trial := 0; trial < 15; trial++ {
			n := 36
			set := [][]float64{ts.RandomWalk(rng, n), ts.RandomWalk(rng, n)}
			env := envelope.New(set...).ExpandDTW(R)
			c := ts.RandomWalk(rng, n)
			box := ReduceEnvelope(env, 9)
			lb := LowerBound(Reduce(c, 9), box, n)
			for _, s := range set {
				if d := dist.DTW(c, s, R, nil); lb > d+1e-9 {
					t.Fatalf("R=%d: PAA DTW bound %v exceeds DTW %v", R, lb, d)
				}
			}
		}
	}
}

func TestLowerBoundZeroInside(t *testing.T) {
	rng := ts.NewRand(4)
	s := ts.RandomWalk(rng, 32)
	env := envelope.New(s)
	box := ReduceEnvelope(env, 8)
	if lb := LowerBound(Reduce(s, 8), box, 32); lb != 0 {
		t.Fatalf("member must have zero box bound, got %v", lb)
	}
}

func TestMinLowerBound(t *testing.T) {
	rng := ts.NewRand(5)
	n := 32
	a := envelope.New(ts.RandomWalk(rng, n))
	b := envelope.New(ts.RandomWalk(rng, n))
	c := ts.RandomWalk(rng, n)
	boxes := []Box{ReduceEnvelope(a, 8), ReduceEnvelope(b, 8)}
	got := MinLowerBound(Reduce(c, 8), boxes, n)
	la := LowerBound(Reduce(c, 8), boxes[0], n)
	lb := LowerBound(Reduce(c, 8), boxes[1], n)
	if got != math.Min(la, lb) {
		t.Fatalf("MinLowerBound = %v, want min(%v,%v)", got, la, lb)
	}
}

func TestLowerBoundPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	LowerBound([]float64{1, 2}, Box{Lo: []float64{0}, Hi: []float64{1}}, 8)
}

// Property: admissibility for random dimensionality and window.
func TestLowerBoundProperty(t *testing.T) {
	rng := ts.NewRand(6)
	f := func(dSeed, rSeed uint8) bool {
		n := 40
		D := 1 + int(dSeed)%n
		R := int(rSeed) % 6
		set := [][]float64{ts.RandomWalk(rng, n), ts.RandomWalk(rng, n)}
		env := envelope.New(set...).ExpandDTW(R)
		c := ts.RandomWalk(rng, n)
		lb := LowerBound(Reduce(c, D), ReduceEnvelope(env, D), n)
		for _, s := range set {
			if d := dist.DTW(c, s, R, nil); lb > d+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
