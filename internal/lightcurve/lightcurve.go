// Package lightcurve generates synthetic star light curves — the paper's
// second application domain (Section 2.4): a folded light curve of a
// periodic variable star is a time series with no natural starting point, so
// matching two of them requires comparing every circular shift, which is
// exactly the rotation-invariance problem for shapes.
//
// Three morphological families stand in for the hand-labelled classes used
// in the paper's light-curve experiments (see DESIGN.md, substitutions):
//
//   - Eclipsing binaries: flat flux with one deep and one shallow dip.
//   - Cepheid-like pulsators: smooth asymmetric saw-tooth (fast rise, slow
//     decline) built from a few Fourier harmonics.
//   - RR-Lyrae-like pulsators: sharper rise and more strongly skewed decline.
//
// Every generated curve is folded at a random phase (circular shift) and
// carries photometric noise, so only rotation-invariant matching can align
// two instances of the same class.
package lightcurve

import (
	"fmt"
	"math"
	"math/rand"

	"lbkeogh/internal/ts"
)

// Class enumerates the synthetic light-curve families.
type Class int

const (
	// EclipsingBinary is a flat curve with a deep primary and shallow
	// secondary eclipse.
	EclipsingBinary Class = iota
	// Cepheid is a smooth asymmetric pulsator.
	Cepheid
	// RRLyrae is a sharply rising, skewed pulsator.
	RRLyrae
	numClasses
)

// NumClasses is the number of light-curve families.
const NumClasses = int(numClasses)

func (c Class) String() string {
	switch c {
	case EclipsingBinary:
		return "eclipsing-binary"
	case Cepheid:
		return "cepheid"
	case RRLyrae:
		return "rr-lyrae"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Params varies the instance-level physical parameters within a class.
type Params struct {
	// Depth scales the primary eclipse / pulsation amplitude.
	Depth float64
	// Secondary scales the secondary eclipse relative to the primary (EBs).
	Secondary float64
	// Width is the eclipse width as a phase fraction (EBs) or the rise
	// fraction (pulsators).
	Width float64
	// Skew adjusts the pulsator decline asymmetry.
	Skew float64
}

// RandomParams draws plausible instance parameters for the class.
func RandomParams(rng *rand.Rand, c Class) Params {
	switch c {
	case EclipsingBinary:
		return Params{
			Depth:     0.6 + 0.4*rng.Float64(),
			Secondary: 0.2 + 0.4*rng.Float64(),
			Width:     0.05 + 0.05*rng.Float64(),
		}
	case Cepheid:
		return Params{
			Depth: 0.8 + 0.4*rng.Float64(),
			Width: 0.25 + 0.15*rng.Float64(),
			Skew:  0.3 + 0.2*rng.Float64(),
		}
	default: // RRLyrae
		return Params{
			Depth: 0.9 + 0.5*rng.Float64(),
			Width: 0.08 + 0.07*rng.Float64(),
			Skew:  0.6 + 0.25*rng.Float64(),
		}
	}
}

// Fold evaluates the noiseless folded light curve of class c at phase
// p ∈ [0, 1). Flux is in arbitrary magnitude-like units (dips go negative).
func Fold(c Class, prm Params, p float64) float64 {
	p = math.Mod(p, 1)
	if p < 0 {
		p++
	}
	switch c {
	case EclipsingBinary:
		v := 0.0
		v -= prm.Depth * eclipse(p, 0.25, prm.Width)
		v -= prm.Depth * prm.Secondary * eclipse(p, 0.75, prm.Width*1.2)
		return v
	case Cepheid:
		// Smooth asymmetric wave from two harmonics.
		return prm.Depth * (math.Sin(2*math.Pi*p) + prm.Skew*math.Sin(4*math.Pi*p+0.6))
	default: // RRLyrae: fast rise over Width, skewed exponential decline
		if p < prm.Width {
			return prm.Depth * (p / prm.Width)
		}
		tail := (p - prm.Width) / (1 - prm.Width)
		return prm.Depth * math.Exp(-3*prm.Skew*tail) * (1 - tail*0.2)
	}
}

// eclipse is a smooth dip of the given phase width centred at c0.
func eclipse(p, c0, w float64) float64 {
	d := math.Abs(p - c0)
	if d > 0.5 {
		d = 1 - d
	}
	if d >= w {
		return 0
	}
	x := d / w
	return (1 + math.Cos(math.Pi*x)) / 2
}

// Generate returns one folded, z-normalized, noisy light curve of length n
// from class c, at a random phase.
func Generate(rng *rand.Rand, c Class, n int, noise float64) []float64 {
	prm := RandomParams(rng, c)
	phase := rng.Float64()
	out := make([]float64, n)
	for i := range out {
		out[i] = Fold(c, prm, float64(i)/float64(n)+phase)
	}
	out = ts.AddNoise(rng, out, noise)
	return ts.ZNorm(out)
}

// Dataset returns m labelled light curves of length n, classes drawn
// round-robin so the class balance is even.
func Dataset(seed int64, m, n int, noise float64) (series [][]float64, labels []int) {
	rng := ts.NewRand(seed)
	series = make([][]float64, m)
	labels = make([]int, m)
	for i := 0; i < m; i++ {
		c := Class(i % NumClasses)
		series[i] = Generate(rng, c, n, noise)
		labels[i] = int(c)
	}
	return series, labels
}
