package lightcurve

import (
	"math"
	"testing"

	"lbkeogh/internal/core"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

func TestFoldPeriodic(t *testing.T) {
	rng := ts.NewRand(1)
	for c := Class(0); c < numClasses; c++ {
		prm := RandomParams(rng, c)
		for _, p := range []float64{0, 0.3, 0.99} {
			a := Fold(c, prm, p)
			b := Fold(c, prm, p+1)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("%v: Fold not periodic at %v", c, p)
			}
		}
		if v := Fold(c, prm, -0.25); math.IsNaN(v) {
			t.Fatalf("%v: negative phase NaN", c)
		}
	}
}

func TestEclipseShape(t *testing.T) {
	rng := ts.NewRand(2)
	prm := RandomParams(rng, EclipsingBinary)
	// Primary eclipse at phase 0.25 must be the global minimum.
	minP, minV := 0.0, math.Inf(1)
	for i := 0; i < 1000; i++ {
		p := float64(i) / 1000
		if v := Fold(EclipsingBinary, prm, p); v < minV {
			minP, minV = p, v
		}
	}
	if math.Abs(minP-0.25) > 0.02 {
		t.Fatalf("primary eclipse at %v, want 0.25", minP)
	}
	// Out-of-eclipse flux is flat zero.
	if v := Fold(EclipsingBinary, prm, 0.0); v != 0 {
		t.Fatalf("out-of-eclipse flux = %v, want 0", v)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(ts.NewRand(7), Cepheid, 128, 0.05)
	b := Generate(ts.NewRand(7), Cepheid, 128, 0.05)
	if !ts.Equal(a, b, 0) {
		t.Fatal("same seed must generate identical curves")
	}
	if len(a) != 128 {
		t.Fatalf("length = %d", len(a))
	}
	if m := ts.Mean(a); math.Abs(m) > 1e-9 {
		t.Fatalf("curve not z-normalized: mean %v", m)
	}
}

func TestDatasetBalanced(t *testing.T) {
	series, labels := Dataset(3, 30, 64, 0.05)
	if len(series) != 30 || len(labels) != 30 {
		t.Fatal("dataset size wrong")
	}
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	for c := 0; c < NumClasses; c++ {
		if counts[c] != 10 {
			t.Fatalf("class %d has %d instances, want 10", c, counts[c])
		}
	}
}

// Same-class curves must match closer than cross-class curves under
// rotation-invariant ED — the property that makes 1-NN classification work.
func TestClassesSeparableUnderRED(t *testing.T) {
	rng := ts.NewRand(4)
	n := 128
	for c := Class(0); c < numClasses; c++ {
		q := Generate(rng, c, n, 0.05)
		rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
		s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{})
		var sameBest, diffBest = math.Inf(1), math.Inf(1)
		for trial := 0; trial < 6; trial++ {
			for c2 := Class(0); c2 < numClasses; c2++ {
				m := s.MatchSeries(Generate(rng, c2, n, 0.05), -1, nil)
				if c2 == c {
					sameBest = math.Min(sameBest, m.Dist)
				} else {
					diffBest = math.Min(diffBest, m.Dist)
				}
			}
		}
		if sameBest >= diffBest {
			t.Fatalf("class %v: same-class best %v not below cross-class best %v", c, sameBest, diffBest)
		}
	}
}

// A phase shift of the same physical curve must be recovered exactly by
// rotation-invariant matching.
func TestPhaseInvariance(t *testing.T) {
	rng := ts.NewRand(5)
	prm := RandomParams(rng, RRLyrae)
	n := 128
	mk := func(phase float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = Fold(RRLyrae, prm, float64(i)/float64(n)+phase)
		}
		return ts.ZNorm(out)
	}
	a := mk(0)
	b := mk(0.375) // exactly 48/128 samples
	rs := core.NewRotationSet(a, core.DefaultOptions(), nil)
	s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{})
	m := s.MatchSeries(b, -1, nil)
	if m.Dist > 1e-6 {
		t.Fatalf("phase-shifted copy should match exactly, got %v", m.Dist)
	}
}

func TestClassString(t *testing.T) {
	if EclipsingBinary.String() != "eclipsing-binary" || Cepheid.String() != "cepheid" ||
		RRLyrae.String() != "rr-lyrae" {
		t.Fatal("Class.String broken")
	}
	if Class(9).String() != "Class(9)" {
		t.Fatal("unknown class string broken")
	}
}
