package lbkeogh

import (
	"lbkeogh/internal/index"
	"lbkeogh/internal/rtree"
	"lbkeogh/internal/vptree"
	"lbkeogh/internal/wedge"
)

// IndexHealth is the structural self-report of a built Index: collection
// sizes plus the health of the VP-tree (Euclidean path) and R-tree (DTW
// path). See Index.Health.
type IndexHealth = index.Health

// VPTreeHealth reports on the vantage-point tree over Fourier-magnitude
// features: shape, balance, and the vantage-ball radius distribution.
type VPTreeHealth = vptree.Health

// RTreeHealth reports on the R-tree over PAA points: shape, leaf occupancy,
// and sibling-MBR overlap (the figure that predicts pruning power).
type RTreeHealth = rtree.Health

// WedgeTreeStats reports on a query's hierarchically nested wedge set: merge
// quality and the envelope-area profile across candidate K cuts.
type WedgeTreeStats = wedge.TreeStats

// WedgeKProfile is one candidate wedge-set size K in a WedgeTreeStats report.
type WedgeKProfile = wedge.KProfile

// Health walks the index structures once and returns their structural
// report: VP-tree depth/balance/radius distribution, R-tree occupancy and
// MBR overlap, plus the collection dimensions. Safe to call concurrently
// with queries.
func (ix *Index) Health() IndexHealth { return ix.ix.Health() }

// WedgeStats reports on the query's wedge hierarchy (the W-set the wedge
// strategy searches): per-merge envelope inflation and the area profile of
// every power-of-two K cut. Useful when the wedge strategy prunes worse than
// expected — fat wedges (large merge inflation, large per-wedge area) bound
// loosely and admit everything.
func (q *Query) WedgeStats() WedgeTreeStats { return q.rs.Tree().Stats() }
