module lbkeogh

go 1.22
