package lbkeogh

// One benchmark per table/figure of the paper's evaluation (Section 5),
// plus ablations for the design decisions DESIGN.md calls out. These run at
// reduced scale so `go test -bench=.` finishes in minutes; cmd/benchrun
// performs the full parameter sweeps and prints the figures' series.
//
// Figure mapping:
//   BenchmarkFigure19*  — projectile points, Euclidean (steps vs brute force)
//   BenchmarkFigure20*  — projectile points, DTW
//   BenchmarkFigure21*  — heterogeneous dataset, ED + DTW
//   BenchmarkFigure22*  — light curves, Euclidean
//   BenchmarkFigure23*  — light curves, DTW
//   BenchmarkFigure24*  — disk accesses through the compressed index
//   BenchmarkTable8*    — 1-NN classification
//   BenchmarkAblation*  — dynamic K, traversal order, wedge clustering,
//                         early abandoning, index wedge count
//   BenchmarkKernel*    — raw distance kernels and bounds

import (
	"math"
	"sync"
	"testing"

	"lbkeogh/internal/classify"
	"lbkeogh/internal/core"
	"lbkeogh/internal/dist"
	"lbkeogh/internal/envelope"
	"lbkeogh/internal/fourier"
	"lbkeogh/internal/index"
	"lbkeogh/internal/lightcurve"
	"lbkeogh/internal/mining"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/stream"
	"lbkeogh/internal/synth"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

// benchData caches the generated workloads across benchmarks.
var benchData struct {
	once      sync.Once
	projDB    [][]float64 // 512 × 251
	projQuery []float64
	hetDB     [][]float64 // 256 × 256
	hetQuery  []float64
	lcDB      [][]float64 // 256 × 256
	lcQuery   []float64
}

func loadBenchData() {
	benchData.once.Do(func() {
		proj := synth.ProjectilePoints(2006, 513, 251)
		benchData.projDB, benchData.projQuery = proj[:512], proj[512]
		het := synth.Heterogeneous(2007, 257, 256)
		benchData.hetDB, benchData.hetQuery = het[:256], het[256]
		lc, _ := lightcurve.Dataset(2008, 257, 256, 0.15)
		benchData.lcDB, benchData.lcQuery = lc[:256], lc[256]
	})
}

// benchScanStats runs one full database scan per iteration with the given
// strategy/kernel and reports steps-per-comparison as a custom metric.
func benchScanStats(b *testing.B, db [][]float64, query []float64, kern wedge.Kernel, strat core.Strategy) {
	b.Helper()
	loadBenchData()
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cnt stats.Counter
		rs := core.NewRotationSet(query, core.DefaultOptions(), &cnt)
		s := core.NewSearcher(rs, kern, strat, core.SearcherConfig{})
		res := s.Scan(db, &cnt)
		if res.Index < 0 {
			b.Fatal("scan found nothing")
		}
		steps += cnt.Steps()
	}
	b.ReportMetric(float64(steps)/float64(b.N)/float64(len(db)), "steps/comparison")
}

// --- Figure 19: projectile points, Euclidean -------------------------------

func BenchmarkFigure19Wedge(b *testing.B) {
	loadBenchData()
	benchScanStats(b, benchData.projDB, benchData.projQuery, wedge.ED{}, core.Wedge)
}

func BenchmarkFigure19EarlyAbandon(b *testing.B) {
	loadBenchData()
	benchScanStats(b, benchData.projDB, benchData.projQuery, wedge.ED{}, core.EarlyAbandon)
}

func BenchmarkFigure19FFT(b *testing.B) {
	loadBenchData()
	benchScanStats(b, benchData.projDB, benchData.projQuery, wedge.ED{}, core.FFTFilter)
}

func BenchmarkFigure19BruteForce(b *testing.B) {
	loadBenchData()
	// Brute force over 512×251 rotations is slow; shrink the database so a
	// single iteration stays sub-second. The steps metric is still per
	// comparison and thus comparable.
	benchScanStats(b, benchData.projDB[:64], benchData.projQuery, wedge.ED{}, core.BruteForce)
}

// --- Figure 20: projectile points, DTW --------------------------------------

func BenchmarkFigure20Wedge(b *testing.B) {
	loadBenchData()
	benchScanStats(b, benchData.projDB, benchData.projQuery, wedge.DTW{R: 5}, core.Wedge)
}

func BenchmarkFigure20EarlyAbandon(b *testing.B) {
	loadBenchData()
	benchScanStats(b, benchData.projDB, benchData.projQuery, wedge.DTW{R: 5}, core.EarlyAbandon)
}

func BenchmarkFigure20BruteForceBandR(b *testing.B) {
	loadBenchData()
	benchScanStats(b, benchData.projDB[:32], benchData.projQuery, wedge.DTW{R: 5}, core.BruteForce)
}

// --- Figure 21: heterogeneous dataset ---------------------------------------

func BenchmarkFigure21EuclideanWedge(b *testing.B) {
	loadBenchData()
	benchScanStats(b, benchData.hetDB, benchData.hetQuery, wedge.ED{}, core.Wedge)
}

func BenchmarkFigure21DTWWedge(b *testing.B) {
	loadBenchData()
	benchScanStats(b, benchData.hetDB, benchData.hetQuery, wedge.DTW{R: 5}, core.Wedge)
}

// --- Figures 22–23: light curves --------------------------------------------

func BenchmarkFigure22EuclideanWedge(b *testing.B) {
	loadBenchData()
	benchScanStats(b, benchData.lcDB, benchData.lcQuery, wedge.ED{}, core.Wedge)
}

func BenchmarkFigure22EuclideanEarlyAbandon(b *testing.B) {
	loadBenchData()
	benchScanStats(b, benchData.lcDB, benchData.lcQuery, wedge.ED{}, core.EarlyAbandon)
}

func BenchmarkFigure23DTWWedge(b *testing.B) {
	loadBenchData()
	benchScanStats(b, benchData.lcDB, benchData.lcQuery, wedge.DTW{R: 5}, core.Wedge)
}

func BenchmarkFigure23DTWEarlyAbandon(b *testing.B) {
	loadBenchData()
	benchScanStats(b, benchData.lcDB, benchData.lcQuery, wedge.DTW{R: 5}, core.EarlyAbandon)
}

// --- Figure 24: disk accesses -----------------------------------------------

func benchIndexSearch(b *testing.B, dtw bool, dims int) {
	b.Helper()
	loadBenchData()
	ix := index.Build(benchData.projDB, dims)
	rs := core.NewRotationSet(benchData.projQuery, core.DefaultOptions(), nil)
	var reads int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Store().ResetReads()
		if dtw {
			ix.SearchDTW(rs, 5, 0, nil)
		} else {
			ix.SearchED(rs, nil)
		}
		reads += ix.Store().Reads()
	}
	b.ReportMetric(float64(reads)/float64(b.N)/float64(len(benchData.projDB)), "fetched-fraction")
}

func BenchmarkFigure24EuclideanD8(b *testing.B)  { benchIndexSearch(b, false, 8) }
func BenchmarkFigure24EuclideanD32(b *testing.B) { benchIndexSearch(b, false, 32) }
func BenchmarkFigure24DTWD8(b *testing.B)        { benchIndexSearch(b, true, 8) }
func BenchmarkFigure24DTWD32(b *testing.B)       { benchIndexSearch(b, true, 32) }

// --- Table 8: classification -------------------------------------------------

func BenchmarkTable8Classification(b *testing.B) {
	d, err := synth.Table8Dataset("MixedBag", 0.4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errRate, _ := classify.LeaveOneOut(d.Series, d.Labels, wedge.ED{}, core.DefaultOptions(), nil)
		if errRate > 1 {
			b.Fatal("impossible error rate")
		}
	}
}

// --- Ablations ----------------------------------------------------------------

// Dynamic K against pinned wedge-set sizes (design decision 3).
func BenchmarkAblationDynamicK(b *testing.B) {
	loadBenchData()
	db, query := benchData.projDB, benchData.projQuery
	for _, cfg := range []struct {
		name   string
		fixedK int
	}{
		{"dynamic", 0},
		{"K1", 1},
		{"Ksqrt", int(math.Sqrt(251))},
		{"Kmax", 251},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				var cnt stats.Counter
				rs := core.NewRotationSet(query, core.DefaultOptions(), &cnt)
				s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{FixedK: cfg.fixedK})
				s.Scan(db, &cnt)
				steps += cnt.Steps()
			}
			b.ReportMetric(float64(steps)/float64(b.N)/float64(len(db)), "steps/comparison")
		})
	}
}

// LIFO (paper) vs best-first traversal (design decision 4).
func BenchmarkAblationTraversal(b *testing.B) {
	loadBenchData()
	db, query := benchData.projDB, benchData.projQuery
	for _, cfg := range []struct {
		name string
		tr   wedge.Traversal
	}{{"lifo", wedge.LIFO}, {"bestfirst", wedge.BestFirst}} {
		b.Run(cfg.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				var cnt stats.Counter
				rs := core.NewRotationSet(query, core.DefaultOptions(), &cnt)
				s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{Traversal: cfg.tr})
				s.Scan(db, &cnt)
				steps += cnt.Steps()
			}
			b.ReportMetric(float64(steps)/float64(b.N)/float64(len(db)), "steps/comparison")
		})
	}
}

// Dendrogram-derived wedges vs naive contiguous-rotation grouping (design
// decision 5): clustering by actual series similarity is what makes wedges
// tight.
func BenchmarkAblationClusteredWedges(b *testing.B) {
	loadBenchData()
	db, query := benchData.projDB, benchData.projQuery
	n := len(query)
	rotations := make([][]float64, n)
	for i := range rotations {
		rotations[i] = ts.Rotate(query, i)
	}
	builds := map[string]func() *wedge.Tree{
		"clustered": func() *wedge.Tree {
			return wedge.Build(rotations, func(i, j int) float64 {
				return dist.Euclidean(rotations[i], rotations[j], nil)
			}, nil)
		},
		"contiguous": func() *wedge.Tree {
			return wedge.Build(rotations, func(i, j int) float64 {
				d := i - j
				if d < 0 {
					d = -d
				}
				if n-d < d {
					d = n - d
				}
				return float64(d) // circular index distance: adjacent shifts merge first
			}, nil)
		},
	}
	for name, build := range builds {
		b.Run(name, func(b *testing.B) {
			tree := build()
			var steps int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var cnt stats.Tally
				bsf := math.Inf(1)
				for _, x := range db {
					res := tree.Search(x, wedge.ED{}, 8, bsf, wedge.LIFO, &cnt)
					if res.BestMember >= 0 && res.Dist < bsf {
						bsf = res.Dist
					}
				}
				steps += cnt.Steps()
			}
			b.ReportMetric(float64(steps)/float64(b.N)/float64(len(db)), "steps/comparison")
		})
	}
}

// Early abandoning on/off inside the Euclidean kernel (design decision 6).
func BenchmarkAblationEarlyAbandon(b *testing.B) {
	loadBenchData()
	db, query := benchData.projDB, benchData.projQuery
	b.Run("on", func(b *testing.B) {
		benchScanStats(b, db, query, wedge.ED{}, core.EarlyAbandon)
	})
	b.Run("off", func(b *testing.B) {
		benchScanStats(b, db[:64], query, wedge.ED{}, core.BruteForce)
	})
}

// Index wedge count for the DTW path: K envelopes per query (Section 4.2).
func BenchmarkAblationIndexWedges(b *testing.B) {
	loadBenchData()
	ix := index.Build(benchData.projDB, 16)
	rs := core.NewRotationSet(benchData.projQuery, core.DefaultOptions(), nil)
	for _, k := range []int{4, 16, 64, 251} {
		b.Run(map[bool]string{true: "K" + itoa(k)}[true], func(b *testing.B) {
			var reads int
			for i := 0; i < b.N; i++ {
				ix.Store().ResetReads()
				ix.SearchDTW(rs, 5, k, nil)
				reads += ix.Store().Reads()
			}
			b.ReportMetric(float64(reads)/float64(b.N)/float64(len(benchData.projDB)), "fetched-fraction")
		})
	}
}

// --- Extensions: mining, streaming, parallel scan -----------------------------

func BenchmarkMiningClosestPair(b *testing.B) {
	loadBenchData()
	db := benchData.projDB[:64]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mining.ClosestPair(db, wedge.ED{}, core.DefaultOptions(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamFilter(b *testing.B) {
	loadBenchData()
	patterns := benchData.projDB[:16]
	rng := ts.NewRand(99)
	streamVals := ts.RandomSeries(rng, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := stream.NewMonitor(patterns, wedge.ED{}, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		m.PushAll(streamVals)
	}
}

func BenchmarkParallelScan(b *testing.B) {
	loadBenchData()
	db, query := benchData.projDB, benchData.projQuery
	rs := core.NewRotationSet(query, core.DefaultOptions(), nil)
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers"+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ScanParallel(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{}, db, workers, nil)
			}
		})
	}
}

// --- Raw kernels ---------------------------------------------------------------

func BenchmarkKernelEuclidean(b *testing.B) {
	rng := ts.NewRand(1)
	x := ts.RandomWalk(rng, 251)
	y := ts.RandomWalk(rng, 251)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.Euclidean(x, y, nil)
	}
}

func BenchmarkKernelDTWBanded(b *testing.B) {
	rng := ts.NewRand(2)
	x := ts.RandomWalk(rng, 251)
	y := ts.RandomWalk(rng, 251)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.DTW(x, y, 5, nil)
	}
}

func BenchmarkKernelLBKeogh(b *testing.B) {
	rng := ts.NewRand(3)
	set := [][]float64{ts.RandomWalk(rng, 251), ts.RandomWalk(rng, 251), ts.RandomWalk(rng, 251)}
	env := envelope.New(set...)
	q := ts.RandomWalk(rng, 251)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		envelope.LBKeogh(q, env, -1, nil)
	}
}

func BenchmarkKernelFFTMagnitudes(b *testing.B) {
	rng := ts.NewRand(4)
	x := ts.RandomWalk(rng, 251)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fourier.Magnitudes(x, 32)
	}
}

func BenchmarkKernelRotationSetBuild(b *testing.B) {
	rng := ts.NewRand(5)
	x := ts.RandomWalk(rng, 251)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewRotationSet(x, core.DefaultOptions(), nil)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
