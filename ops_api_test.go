package lbkeogh_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"lbkeogh"
	"lbkeogh/internal/server"
)

// TestServerMetricsExemplarCorrelation closes the loop the operations runbook
// relies on: a traced request's trace ID must surface as an OpenMetrics
// exemplar on the request-duration histogram, round-trip through the text
// exposition parser, and resolve back to a retained entry in the slow-query
// ring. It also pins the presence of the runtime and rolling-window families
// on the server's /metrics.
func TestServerMetricsExemplarCorrelation(t *testing.T) {
	tlog := lbkeogh.NewTraceLog(
		lbkeogh.WithSampleRate(1),
		lbkeogh.WithSlowThreshold(time.Nanosecond), // every query is "slow": all traces retained in the slow ring
	)
	srv, err := server.New(server.Config{
		DB:       lbkeogh.SyntheticProjectilePoints(7, 20, 32),
		TraceLog: tlog,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/search", "application/json",
		strings.NewReader(`{"query_index":0}`))
	if err != nil {
		t.Fatal(err)
	}
	var sr server.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if sr.TraceID == 0 {
		t.Fatal("search response has no trace_id at sample rate 1")
	}

	scrape, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(scrape.Body)
	scrape.Body.Close()
	samples, types := parseExposition(t, string(body))

	if types["shapeserver_request_duration_seconds"] != "histogram" {
		t.Fatalf("request-duration family type = %q, want histogram",
			types["shapeserver_request_duration_seconds"])
	}
	for _, fam := range []string{
		"lbkeogh_runtime_goroutines",
		"shapeserver_window_requests",
		"shapeserver_slo_latency_burn_rate",
		"shapeserver_window_prune_rate",
		"shapeserver_endpoint_requests_total",
	} {
		found := false
		for _, s := range samples {
			if s.Name == fam {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("/metrics has no %s sample", fam)
		}
	}

	// Exactly one bucket of the search endpoint's histogram carries the
	// exemplar of the single request served so far.
	var exTrace string
	for _, s := range samples {
		if s.Name == "shapeserver_request_duration_seconds_bucket" &&
			s.Labels["endpoint"] == "search" && s.Exemplar != nil {
			if exTrace != "" {
				t.Fatalf("two buckets carry exemplars after one request (%s and %s)",
					exTrace, s.Exemplar["trace_id"])
			}
			exTrace = s.Exemplar["trace_id"]
		}
	}
	if exTrace == "" {
		t.Fatalf("no exemplar on the search request-duration buckets:\n%s", body)
	}
	id, err := strconv.ParseInt(exTrace, 10, 64)
	if err != nil {
		t.Fatalf("exemplar trace_id %q is not an integer: %v", exTrace, err)
	}
	if id != sr.TraceID {
		t.Errorf("exemplar trace_id %d != response trace_id %d", id, sr.TraceID)
	}
	resolved := false
	for _, s := range tlog.Slow() {
		if s.ID == id {
			resolved = true
			break
		}
	}
	if !resolved {
		t.Errorf("exemplar trace_id %d does not resolve to a slow-query ring entry", id)
	}
}
