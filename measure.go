package lbkeogh

import (
	"fmt"

	"lbkeogh/internal/wedge"
)

// Measure is a distance measure for rotation-invariant matching. The three
// constructors — Euclidean, DTW and LCSS — cover the measures the paper
// supports; all of them plug into the same wedge machinery.
type Measure struct {
	kern wedge.Kernel
}

// Euclidean returns the Euclidean distance measure (zero parameters).
func Euclidean() Measure {
	return Measure{kern: wedge.ED{}}
}

// DTW returns constrained Dynamic Time Warping with a Sakoe-Chiba band of
// radius r samples (r = 0 degenerates to Euclidean distance; r < 0 means an
// unconstrained warping path).
func DTW(r int) Measure {
	return Measure{kern: wedge.DTW{R: r}}
}

// LCSS returns the Longest Common SubSequence measure in its normalized
// distance form 1 − LCSS/n, with matching window delta (samples) and
// matching threshold eps (in z-normalized units).
func LCSS(delta int, eps float64) Measure {
	return Measure{kern: wedge.LCSS{Delta: delta, Eps: eps}}
}

// Name identifies the measure ("euclidean", "dtw", "lcss").
func (m Measure) Name() string {
	if m.kern == nil {
		return "unset"
	}
	return m.kern.Name()
}

func (m Measure) validate() error {
	if m.kern == nil {
		return fmt.Errorf("lbkeogh: zero Measure; use Euclidean(), DTW(r) or LCSS(delta, eps)")
	}
	return nil
}
