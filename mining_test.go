package lbkeogh

import (
	"math"
	"strings"
	"testing"

	"lbkeogh/internal/ts"
)

func TestClosestPairPublic(t *testing.T) {
	db := demoDB(20, 12, 48)
	// Plant the motif.
	rng := ts.NewRand(21)
	db[9] = ts.ZNorm(ts.AddNoise(rng, ts.Rotate(db[2], 17), 0.01))
	motif, err := ClosestPair(db, Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	if motif.I != 2 || motif.J != 9 {
		t.Fatalf("motif = (%d,%d), want (2,9)", motif.I, motif.J)
	}
	// Verify the reported distance against Query.
	q, _ := NewQuery(db[motif.I], Euclidean())
	want, _, _ := q.Distance(db[motif.J])
	if math.Abs(motif.Dist-want) > 1e-9 {
		t.Fatalf("motif dist %v != query dist %v", motif.Dist, want)
	}
}

func TestClosestPairValidation(t *testing.T) {
	if _, err := ClosestPair(nil, Euclidean()); err == nil {
		t.Fatal("want error for empty db")
	}
	if _, err := ClosestPair([]Series{{1, 2, 3}}, Euclidean()); err == nil {
		t.Fatal("want error for single series")
	}
	if _, err := ClosestPair([]Series{{1, 2}, {1, 2}}, Measure{}); err == nil {
		t.Fatal("want error for zero measure")
	}
	if _, err := ClosestPair([]Series{{1, 2}, {1, 2, 3}}, Euclidean()); err == nil {
		t.Fatal("want error for ragged db")
	}
	if _, err := ClosestPair([]Series{{1, 2}, {2, 1}}, Euclidean(), WithMaxRotationDegrees(10)); err == nil {
		t.Fatal("want error for degree limits in mining ops")
	}
}

func TestClusterPublic(t *testing.T) {
	rng := ts.NewRand(22)
	baseA := ts.ZNorm(ts.RandomWalk(rng, 40))
	baseB := ts.ZNorm(ts.RandomWalk(rng, 40))
	var db []Series
	for i := 0; i < 3; i++ {
		db = append(db, ts.ZNorm(ts.AddNoise(rng, ts.Rotate(baseA, rng.Intn(40)), 0.03)))
	}
	for i := 0; i < 3; i++ {
		db = append(db, ts.ZNorm(ts.AddNoise(rng, ts.Rotate(baseB, rng.Intn(40)), 0.03)))
	}
	dend, err := Cluster(db, Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	groups := dend.Clusters(2)
	if len(groups) != 2 {
		t.Fatalf("got %d clusters", len(groups))
	}
	for _, g := range groups {
		isA := g[0] < 3
		for _, idx := range g {
			if (idx < 3) != isA {
				t.Fatalf("cluster mixes planted groups: %v", groups)
			}
		}
	}
	if len(dend.Heights()) != 5 {
		t.Fatalf("heights = %v", dend.Heights())
	}
	out := dend.Render([]string{"a0", "a1", "a2", "b0", "b1", "b2"})
	for _, want := range []string{"a0", "b2", "height"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMedoidPublic(t *testing.T) {
	rng := ts.NewRand(23)
	base := ts.ZNorm(ts.RandomWalk(rng, 32))
	db := []Series{ts.Clone(base)}
	for i := 1; i < 5; i++ {
		db = append(db, ts.ZNorm(ts.AddNoise(rng, ts.Rotate(base, i), 0.08*float64(i))))
	}
	idx, err := Medoid(db, Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("medoid = %d, want 0", idx)
	}
}

func TestDiscordPublic(t *testing.T) {
	d := SyntheticLightCurves(24, 12, 64, 0.05)
	db := append([]Series{}, d.Series...)
	weird := make(Series, 64)
	for i := range weird {
		weird[i] = math.Sin(9*float64(i)) + math.Cos(23*float64(i))
	}
	db = append(db, ts.ZNorm(weird))
	idx, nn, err := Discord(db, Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	if idx != 12 {
		t.Fatalf("discord = %d, want the injected series 12", idx)
	}
	if nn <= 0 {
		t.Fatalf("discord NN = %v", nn)
	}
}

func TestMiningWithMirrorOption(t *testing.T) {
	db := demoDB(25, 8, 40)
	db[5] = ts.Mirror(ts.Rotate(db[1], 7)) // a mirrored rotation of db[1]
	plain, err := ClosestPair(db, Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	mir, err := ClosestPair(db, Euclidean(), WithMirrorInvariance())
	if err != nil {
		t.Fatal(err)
	}
	if mir.Dist > 1e-9 || mir.I != 1 || mir.J != 5 {
		t.Fatalf("mirror motif not found: %+v", mir)
	}
	if plain.Dist < mir.Dist {
		t.Fatal("plain motif cannot beat the mirrored exact match")
	}
}
