package lbkeogh

import (
	"context"
	"fmt"
	"math"

	"lbkeogh/internal/core"
	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/explain"
	"lbkeogh/internal/obs/trace"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/wedge"
)

// Series is a 1-D signal: a shape's centroid-distance signature, a folded
// star light curve, or any fixed-length sequence to be matched under
// circular shifts.
type Series = []float64

// Strategy selects the search algorithm. All strategies return identical,
// exact results; they differ only in cost. The zero value (WedgeSearch) is
// the paper's contribution and the right default.
type Strategy int

const (
	// WedgeSearch is H-Merge over hierarchically nested wedges with the
	// dynamic wedge-set-size controller (Section 4 of the paper).
	WedgeSearch Strategy = iota
	// BruteForceSearch evaluates the full distance for every rotation.
	BruteForceSearch
	// EarlyAbandonSearch evaluates every rotation with early abandoning.
	EarlyAbandonSearch
	// FFTSearch filters with the rotation-invariant Fourier-magnitude lower
	// bound before falling back to early abandoning (Euclidean only).
	FFTSearch
)

func (s Strategy) internal() core.Strategy {
	switch s {
	case BruteForceSearch:
		return core.BruteForce
	case EarlyAbandonSearch:
		return core.EarlyAbandon
	case FFTSearch:
		return core.FFTFilter
	default:
		return core.Wedge
	}
}

// Rotation describes the alignment at which a match was found.
type Rotation struct {
	// Shift is the circular shift (in samples) applied to the query that
	// produced the match.
	Shift int
	// Mirrored reports whether the matching alignment used the query's
	// mirror image (only possible with WithMirrorInvariance).
	Mirrored bool
	// Degrees is the shift expressed as a rotation angle of the original
	// shape, in [0, 360).
	Degrees float64
}

// queryConfig collects the functional options.
type queryConfig struct {
	mirror    bool
	maxShift  int // -1 unlimited, -2 "use maxDeg"
	maxDeg    float64
	strategy  Strategy
	fixedK    int
	traversal wedge.Traversal
	intervals int
	tracer    Tracer
	tlog      *TraceLog
}

// QueryOption customizes NewQuery.
type QueryOption func(*queryConfig)

// WithMirrorInvariance additionally matches the query's mirror image
// (enantiomorphic invariance): a "d" will match a "b".
func WithMirrorInvariance() QueryOption {
	return func(c *queryConfig) { c.mirror = true }
}

// WithMaxRotationSamples restricts matching to circular shifts within
// ±k samples (rotation-limited queries). k must be non-negative.
func WithMaxRotationSamples(k int) QueryOption {
	return func(c *queryConfig) { c.maxShift = k }
}

// WithMaxRotationDegrees restricts matching to rotations within ±deg degrees
// of the query's original orientation — the paper's "find the best match to
// this shape allowing a maximum rotation of 15 degrees".
func WithMaxRotationDegrees(deg float64) QueryOption {
	return func(c *queryConfig) { c.maxShift = -2; c.maxDeg = deg }
}

// WithStrategy overrides the search strategy (default WedgeSearch). All
// strategies are exact; the others exist as baselines and for benchmarks.
func WithStrategy(s Strategy) QueryOption {
	return func(c *queryConfig) { c.strategy = s }
}

// WithFixedWedgeCount pins the wedge-set size K instead of adapting it
// dynamically. Intended for experiments; the dynamic controller is almost
// always at least as good.
func WithFixedWedgeCount(k int) QueryOption {
	return func(c *queryConfig) { c.fixedK = k }
}

// WithBestFirstTraversal switches H-Merge from the paper's stack order to
// best-first lower-bound order (an ablation; usually a small improvement).
func WithBestFirstTraversal() QueryOption {
	return func(c *queryConfig) { c.traversal = wedge.BestFirst }
}

// WithTracer installs a Tracer receiving fine-grained search events (wedge
// visits, early abandons, dynamic-K changes). Tracing is for debugging and
// pruning analysis; it slows the hot path in proportion to the event rate.
func WithTracer(t Tracer) QueryOption {
	return func(c *queryConfig) { c.tracer = t }
}

// WithTraceLog attaches a TraceLog: the query's construction and every
// subsequent search record a span trace — rotation-matrix and wedge builds,
// per-comparison H-Merge walks, kernel evaluations — which the log samples,
// screens for slow queries, and aggregates into per-stage latency
// histograms (surfaced through Stats). The log is safe to share across
// queries, including concurrent ones — each query records into its own
// buffer and only completed traces enter the log.
func WithTraceLog(t *TraceLog) QueryOption {
	return func(c *queryConfig) { c.tlog = t }
}

// Query is a compiled rotation-invariant query: the expanded rotation matrix
// of one series plus its hierarchical wedge structure. Build once (O(n²)),
// then match against any number of candidate series. A Query is not safe for
// concurrent use (it carries adaptive search state); build one per goroutine.
type Query struct {
	rs        *core.RotationSet
	searcher  *core.Searcher
	measure   Measure
	strategy  core.Strategy
	searchCfg core.SearcherConfig
	n         int
	counter   stats.Counter
	obs       obs.SearchStats
	// lastTraceID is the retained trace ID of the most recently finished
	// operation (0 when untraced or sampled away). Queries are single-use
	// per operation — the server pool checks sessions out exclusively — so
	// a plain field is race-free.
	lastTraceID int64
	tlog        *trace.Log // nil: untraced

	// Explain state (see explain.go): the per-operation op, the shared
	// tightness sink, and the last operation's counter delta from which the
	// plan's waterfall is derived.
	exp        *explain.Op
	expSink    *explain.Recorder
	explainOn  bool
	expBefore  obs.Counts
	expDelta   obs.Counts
	expTraceID int64
	expValid   bool
}

// NewQuery compiles series into a rotation-invariant query under the given
// measure. The series must have at least 2 samples; callers normally
// z-normalize first (shape.Signature and the dataset generators already do).
func NewQuery(series Series, m Measure, opts ...QueryOption) (*Query, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	if len(series) < 2 {
		return nil, fmt.Errorf("lbkeogh: query series needs >= 2 samples, got %d", len(series))
	}
	cfg := queryConfig{maxShift: -1, intervals: 5}
	for _, o := range opts {
		o(&cfg)
	}
	maxShift := cfg.maxShift
	if maxShift == -2 { // degrees requested
		if cfg.maxDeg < 0 || cfg.maxDeg >= 180 {
			return nil, fmt.Errorf("lbkeogh: rotation limit %v degrees outside [0, 180)", cfg.maxDeg)
		}
		maxShift = int(math.Round(cfg.maxDeg / 360 * float64(len(series))))
	}
	if maxShift < -1 {
		return nil, fmt.Errorf("lbkeogh: negative rotation limit")
	}
	if cfg.strategy == FFTSearch && m.Name() != "euclidean" {
		return nil, fmt.Errorf("lbkeogh: FFTSearch supports only the Euclidean measure (the magnitude bound is not admissible for %s)", m.Name())
	}
	q := &Query{measure: m, n: len(series), tlog: cfg.tlog.inner()}
	q.strategy = cfg.strategy.internal()
	q.searchCfg = core.SearcherConfig{
		Traversal:      cfg.traversal,
		FixedK:         cfg.fixedK,
		ProbeIntervals: cfg.intervals,
		Obs:            &q.obs,
		Tracer:         cfg.tracer, // Tracer aliases obs.Tracer: no conversion
	}
	rec := q.tlog.StartTrace("build")
	buildSpan := rec.Begin(trace.StageBuild, -1)
	q.rs = core.NewRotationSetTraced(series, core.Options{Mirror: cfg.mirror, MaxShift: maxShift}, &q.counter, rec)
	q.searcher = core.NewSearcher(q.rs, m.kern, q.strategy, q.searchCfg)
	rec.End(buildSpan)
	q.tlog.Finish(rec, obs.Counts{})
	return q, nil
}

// startTrace begins one traced operation: a recorder with a root span of the
// given stage, attached to the searcher so comparisons record under it. On
// an untraced query everything is nil/no-op.
func (q *Query) startTrace(label string, stage trace.Stage) (*trace.Recorder, trace.SpanID, obs.Counts) {
	q.beginExplainOp()
	rec := q.tlog.StartTrace(label)
	if rec == nil {
		return nil, -1, obs.Counts{}
	}
	before := q.obs.Counts()
	root := rec.Begin(stage, -1)
	q.searcher.SetRecorder(rec)
	return rec, root, before
}

// finishTrace closes the root span with the operation's counter deltas and
// hands the trace to the log for sampling and slow-query screening. The
// explain op (when armed) finishes here too, so its waterfall delta and
// exemplar correlation cover exactly the traced operation.
func (q *Query) finishTrace(rec *trace.Recorder, root trace.SpanID, before obs.Counts) {
	var tid int64
	if rec != nil {
		q.searcher.SetRecorder(nil)
		delta := q.obs.Counts().Sub(before)
		rec.EndAttrs(root, delta)
		q.lastTraceID = q.tlog.Finish(rec, delta)
		tid = q.lastTraceID
	}
	q.endExplainOp(tid)
}

// LastTraceID returns the retained trace ID of the query's most recently
// finished operation, or 0 when the operation was untraced or not retained
// by the trace log's sampler. Serving layers attach it to responses and
// histogram exemplars so a slow request can be chased to its trace.
func (q *Query) LastTraceID() int64 { return q.lastTraceID }

// Len returns the query's series length; every candidate must match it.
func (q *Query) Len() int { return q.n }

// Rotations returns the number of alignments the query admits (n, doubled
// by mirror invariance, reduced by rotation limits).
func (q *Query) Rotations() int { return q.rs.Members() }

// Steps returns the cumulative num_steps (real-value subtractions) this
// query has spent, including its construction cost — the paper's
// implementation-free efficiency metric.
func (q *Query) Steps() int64 { return q.counter.Steps() }

// ResetSteps zeroes the step counter (construction cost included — call
// right after NewQuery to exclude it).
func (q *Query) ResetSteps() { q.counter.Reset() }

// Stats returns a snapshot of the query's instrumentation record: the
// pruning breakdown per bound, the per-comparison steps histogram, and the
// dynamic-K trajectory, cumulative over every comparison this query has run
// (including through SearchParallel). Unlike Steps, it excludes the
// construction cost — it covers matching only. When a TraceLog is attached,
// the snapshot additionally carries the log's per-stage latency summaries.
func (q *Query) Stats() SearchStats {
	s := statsFromSnapshot(q.obs.Snapshot())
	s.StageLatencies = stageLatenciesFromInternal(q.tlog.Latencies().Snapshot())
	return s
}

// ResetStats zeroes the instrumentation record (the Steps counter is
// independent and unaffected).
func (q *Query) ResetStats() { q.obs.Reset() }

func (q *Query) rotation(m core.Member) Rotation {
	return Rotation{
		Shift:    m.Shift,
		Mirrored: m.Mirrored,
		Degrees:  float64(m.Shift) / float64(q.n) * 360,
	}
}

func (q *Query) checkSeries(x Series) error {
	if len(x) != q.n {
		return fmt.Errorf("lbkeogh: candidate length %d != query length %d", len(x), q.n)
	}
	return nil
}

// Distance returns the exact rotation-invariant distance from the query to
// x — the minimum measure distance over every admitted alignment — and the
// minimizing rotation.
func (q *Query) Distance(x Series) (float64, Rotation, error) {
	if err := q.checkSeries(x); err != nil {
		return 0, Rotation{}, err
	}
	rec, root, before := q.startTrace("distance", trace.StageSearch)
	m := q.searcher.MatchSeries(x, -1, &q.counter)
	q.finishTrace(rec, root, before)
	return m.Dist, q.rotation(m.Member), nil
}

// Match tests whether any alignment of the query is strictly closer to x
// than threshold; when it is, the exact distance and rotation are returned
// with ok = true. This is the range-query primitive (and far cheaper than
// Distance when the threshold is tight, thanks to early abandoning).
func (q *Query) Match(x Series, threshold float64) (dist float64, rot Rotation, ok bool, err error) {
	if err := q.checkSeries(x); err != nil {
		return 0, Rotation{}, false, err
	}
	rec, root, before := q.startTrace("match", trace.StageSearch)
	m := q.searcher.MatchSeries(x, threshold, &q.counter)
	q.finishTrace(rec, root, before)
	if !m.Found() {
		return math.Inf(1), Rotation{}, false, nil
	}
	return m.Dist, q.rotation(m.Member), true, nil
}

// SearchResult is one database hit.
type SearchResult struct {
	// Index is the position of the matched series in the database slice.
	Index int
	// Dist is the exact rotation-invariant distance.
	Dist float64
	// Rotation is the minimizing alignment.
	Rotation Rotation
}

// validateDB rejects an empty database and any series whose length differs
// from the query's, with the offending index in the error.
func (q *Query) validateDB(db []Series) error {
	if len(db) == 0 {
		return fmt.Errorf("lbkeogh: empty database")
	}
	for i, x := range db {
		if len(x) != q.n {
			return fmt.Errorf("lbkeogh: database series %d length %d != query length %d", i, len(x), q.n)
		}
	}
	return nil
}

// checkCtx is the Search*Context entry fast path: an already-expired context
// fails before any validation, tracing, or scanning happens. A nil ctx is
// treated as context.Background (uncancellable).
func checkCtx(ctx context.Context) (context.Context, error) {
	if ctx == nil {
		return context.Background(), nil
	}
	return ctx, ctx.Err()
}

// Search scans db linearly and returns the exact nearest neighbour under
// the query's measure and invariances (Table 3 of the paper, with the
// query's strategy deciding how each comparison is accelerated).
func (q *Query) Search(db []Series) (SearchResult, error) {
	return q.SearchContext(context.Background(), db)
}

// SearchContext is Search bounded by ctx: the scan checks for cancellation
// at amortized checkpoints (at least once per database comparison, and every
// core.CancelCheckInterval'th rotation within one) and returns ctx.Err() as
// soon as one trips. A cancelled search leaves the query valid and reusable;
// the rotations it never disposed of are reported in
// SearchStats.CancelledMembers, so the stats record still reconciles. With
// an uncancelled ctx the result is identical to Search.
func (q *Query) SearchContext(ctx context.Context, db []Series) (SearchResult, error) {
	ctx, err := checkCtx(ctx)
	if err != nil {
		return SearchResult{}, err
	}
	if err := q.validateDB(db); err != nil {
		return SearchResult{}, err
	}
	rec, root, before := q.startTrace("search", trace.StageSearch)
	r, err := q.searcher.ScanContext(ctx, db, &q.counter)
	q.finishTrace(rec, root, before)
	if err != nil {
		return SearchResult{}, err
	}
	return SearchResult{Index: r.Index, Dist: r.Dist, Rotation: q.rotation(r.Member)}, nil
}

// SearchParallel is Search distributed across the given number of worker
// goroutines (0 selects GOMAXPROCS). The rotation set and its wedge
// hierarchy are shared (they are concurrency-safe); each worker owns its
// adaptive search state, and all workers prune against the shared
// best-so-far. The result is identical to Search.
func (q *Query) SearchParallel(db []Series, workers int) (SearchResult, error) {
	return q.SearchParallelContext(context.Background(), db, workers)
}

// SearchParallelContext is SearchParallel bounded by ctx. Each worker polls
// its own amortized checkpoint, so a cancellation stops every worker within
// one checkpoint interval; the workers are joined before the error returns,
// so a cancelled search leaks no goroutines and leaves the query reusable.
func (q *Query) SearchParallelContext(ctx context.Context, db []Series, workers int) (SearchResult, error) {
	ctx, err := checkCtx(ctx)
	if err != nil {
		return SearchResult{}, err
	}
	if err := q.validateDB(db); err != nil {
		return SearchResult{}, err
	}
	// Parallel scans record the root span only: a Recorder is
	// single-goroutine, and the per-worker searchers are built from the
	// config, recorder-less.
	rec, root, before := q.startTrace("search_parallel", trace.StageSearch)
	r, err := core.ScanParallelContext(ctx, q.rs, q.measure.kern, q.strategy, q.searchCfg, db, workers, &q.counter)
	q.finishTrace(rec, root, before)
	if err != nil {
		return SearchResult{}, err
	}
	if r.Index < 0 {
		// Unreachable through the public API: validateDB guarantees a
		// non-empty database of query-length series, and an uncancelled
		// exact scan of such a database always yields a finite minimum.
		return SearchResult{}, fmt.Errorf("lbkeogh: internal invariant violated: uncancelled parallel scan over %d series returned no result", len(db))
	}
	return SearchResult{Index: r.Index, Dist: r.Dist, Rotation: q.rotation(r.Member)}, nil
}

// SearchTopK returns the k exact nearest neighbours in ascending distance
// order (k is clamped to len(db)).
func (q *Query) SearchTopK(db []Series, k int) ([]SearchResult, error) {
	return q.SearchTopKContext(context.Background(), db, k)
}

// SearchTopKContext is SearchTopK bounded by ctx, with the same cancellation
// semantics as SearchContext.
func (q *Query) SearchTopKContext(ctx context.Context, db []Series, k int) ([]SearchResult, error) {
	ctx, err := checkCtx(ctx)
	if err != nil {
		return nil, err
	}
	if err := q.validateDB(db); err != nil {
		return nil, err
	}
	if k > len(db) {
		k = len(db)
	}
	rec, root, before := q.startTrace("search_topk", trace.StageSearch)
	rs, err := q.searcher.ScanTopKContext(ctx, db, k, &q.counter)
	q.finishTrace(rec, root, before)
	if err != nil {
		return nil, err
	}
	out := make([]SearchResult, len(rs))
	for i, r := range rs {
		out[i] = SearchResult{Index: r.Index, Dist: r.Dist, Rotation: q.rotation(r.Member)}
	}
	return out, nil
}

// SearchRange returns every database series whose exact rotation-invariant
// distance is strictly below threshold, in ascending distance order. The
// threshold doubles as the early-abandoning bound, so tight ranges are far
// cheaper than a full nearest-neighbour scan.
func (q *Query) SearchRange(db []Series, threshold float64) ([]SearchResult, error) {
	return q.SearchRangeContext(context.Background(), db, threshold)
}

// SearchRangeContext is SearchRange bounded by ctx, with the same
// cancellation semantics as SearchContext.
func (q *Query) SearchRangeContext(ctx context.Context, db []Series, threshold float64) ([]SearchResult, error) {
	ctx, err := checkCtx(ctx)
	if err != nil {
		return nil, err
	}
	if err := q.validateDB(db); err != nil {
		return nil, err
	}
	rec, root, before := q.startTrace("search_range", trace.StageSearch)
	rs, err := q.searcher.ScanRangeContext(ctx, db, threshold, &q.counter)
	q.finishTrace(rec, root, before)
	if err != nil {
		return nil, err
	}
	out := make([]SearchResult, len(rs))
	for i, r := range rs {
		out[i] = SearchResult{Index: r.Index, Dist: r.Dist, Rotation: q.rotation(r.Member)}
	}
	return out, nil
}
