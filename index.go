package lbkeogh

import (
	"fmt"

	"lbkeogh/internal/core"
	"lbkeogh/internal/diskstore"
	"lbkeogh/internal/index"
	"lbkeogh/internal/obs"
	"lbkeogh/internal/segment"
	"lbkeogh/internal/wedge"
)

// Index is the exact disk-backed rotation-invariant index of Section 4.2:
// the full-resolution series live in a (simulated) disk store while a
// D-dimensional compressed representation — rotation-invariant Fourier
// magnitudes plus PAA means — stays in memory. Queries are answered exactly;
// the index only decides which objects must be fetched for verification.
type Index struct {
	ix     *index.Index
	n      int
	m      int
	closer func() error // set for file-backed indexes
	seg    *segment.DB  // set for segment-backed indexes
	obs    obs.SearchStats
	tracer Tracer
	tlog   *TraceLog
}

// SegmentStore returns the underlying segment store for an index opened
// with OpenSegmentIndex, or nil for every other kind of index. It is how
// tools attach storage-plane observability (segment.DB.SetObserver) to an
// index they opened through this package. The store is owned by the index:
// do not Close it directly.
func (ix *Index) SegmentStore() *segment.DB { return ix.seg }

// initObserver wires the index's instrumentation record (and any tracer)
// into the internal layer; called at construction and by SetTracer.
// Tracer aliases the internal interface, so no adapter is needed.
func (ix *Index) initObserver() {
	ix.ix.SetObserver(&ix.obs, ix.tracer)
}

// Stats returns a snapshot of the index's instrumentation record,
// cumulative over every query answered: index-level candidate and fetch
// counts, disk reads, and the verification searches' pruning breakdowns.
// When a TraceLog is attached, the snapshot additionally carries the log's
// per-stage latency summaries.
func (ix *Index) Stats() SearchStats {
	s := statsFromSnapshot(ix.obs.Snapshot())
	s.StageLatencies = stageLatenciesFromInternal(ix.tlog.inner().Latencies().Snapshot())
	return s
}

// SetTraceLog attaches a TraceLog (nil detaches): every subsequent query
// records a span trace — index probe, per-candidate disk fetch, and the
// verification comparisons — sampled and screened for slow queries by the
// log. File-backed stores additionally feed per-record read durations into
// the log's disk_read histogram. Not safe to call concurrently with
// queries.
func (ix *Index) SetTraceLog(t *TraceLog) {
	ix.tlog = t
	ix.ix.SetTraceLog(t.inner())
}

// ResetStats zeroes the instrumentation record (the DiskReads counter of
// the underlying store is independent; see ResetDiskReads).
func (ix *Index) ResetStats() { ix.obs.Reset() }

// SetTracer installs a Tracer receiving per-fetch and verification-search
// events (nil removes it). Not safe to call concurrently with queries.
func (ix *Index) SetTracer(t Tracer) {
	ix.tracer = t
	ix.initObserver()
}

// NewIndex builds an index over db, keeping dims compressed dimensions per
// object (the paper evaluates dims in {4, 8, 16, 32}). All series must share
// one length.
func NewIndex(db []Series, dims int) (*Index, error) {
	if len(db) == 0 {
		return nil, fmt.Errorf("lbkeogh: empty database")
	}
	n := len(db[0])
	for i, s := range db {
		if len(s) != n {
			return nil, fmt.Errorf("lbkeogh: database series %d length %d != %d", i, len(s), n)
		}
	}
	if dims < 1 {
		return nil, fmt.Errorf("lbkeogh: dims must be >= 1, got %d", dims)
	}
	if dims > n/2 {
		dims = n / 2
	}
	out := &Index{ix: index.Build(db, dims), n: n, m: len(db)}
	out.initObserver()
	return out, nil
}

// WriteSeriesFile persists db as an on-disk series file that OpenIndexFile
// can index later. All series must share one length.
func WriteSeriesFile(path string, db []Series) error {
	return diskstore.Write(path, db)
}

// OpenIndexFile opens a series file written by WriteSeriesFile and builds a
// rotation-invariant index over it, with full-resolution data staying on
// disk: queries fetch only the records their compressed bounds cannot
// exclude. Call Close when done.
func OpenIndexFile(path string, dims int) (*Index, error) {
	store, err := diskstore.Open(path)
	if err != nil {
		return nil, err
	}
	if dims < 1 {
		store.Close()
		return nil, fmt.Errorf("lbkeogh: dims must be >= 1, got %d", dims)
	}
	if dims > store.SeriesLen()/2 {
		dims = store.SeriesLen() / 2
	}
	inner, err := index.BuildFromStore(store, store.SeriesLen(), dims)
	if err != nil {
		store.Close()
		return nil, err
	}
	out := &Index{ix: inner, n: store.SeriesLen(), m: store.Len(), closer: store.Close}
	out.initObserver()
	return out, nil
}

// OpenSegmentIndex opens a memory-mapped segment store directory (written by
// shapeingest, diskstore.Migrate, or the server's ingest API) and builds a
// rotation-invariant index over the generation current at open time. The
// stored feature columns — FFT magnitudes and PAA means computed once at
// ingest — are reused directly, so the build never re-reads the raw series;
// queries fetch only the records their compressed bounds cannot exclude,
// through the mapping rather than a heap copy of the database.
//
// dims is used only when the manifest does not fix one (it always does for
// stores written by this codebase); the store's own dimensionality wins.
// Records ingested into dir after the open are not visible — reopen to see
// them. Call Close when done.
func OpenSegmentIndex(dir string, dims int) (*Index, error) {
	store, err := segment.OpenDB(dir, dims)
	if err != nil {
		return nil, err
	}
	if store.Len() == 0 {
		store.Close()
		return nil, fmt.Errorf("lbkeogh: segment store %s is empty", dir)
	}
	// Pin the open-time generation: the index's feature rows are views into
	// these mappings, so they must outlive every query.
	snap := store.Acquire()
	mags, paas := snap.Features()
	inner, err := index.BuildFromColumns(store, store.SeriesLen(), store.Dims(), mags, paas)
	if err != nil {
		snap.Release()
		store.Close()
		return nil, err
	}
	out := &Index{ix: inner, n: store.SeriesLen(), m: store.Len(), seg: store, closer: func() error {
		snap.Release()
		return store.Close()
	}}
	out.initObserver()
	return out, nil
}

// Close releases the resources of a file-backed index; it is a no-op for
// in-memory indexes.
func (ix *Index) Close() error {
	if ix.closer != nil {
		return ix.closer()
	}
	return nil
}

// Len returns the number of indexed series.
func (ix *Index) Len() int { return ix.m }

// Dims returns the retained compressed dimensionality.
func (ix *Index) Dims() int { return ix.ix.D() }

// DiskReads reports how many full series have been fetched from the
// simulated disk since the last ResetDiskReads — the metric of the paper's
// Figure 24.
func (ix *Index) DiskReads() int { return ix.ix.Store().Reads() }

// ResetDiskReads zeroes the disk-access counter.
func (ix *Index) ResetDiskReads() { ix.ix.Store().ResetReads() }

// SearchRange returns every indexed series whose exact rotation-invariant
// distance to the query is strictly below radius, in ascending database
// order — the "range" search of the paper's Section 3. Supports the
// Euclidean and DTW measures.
func (ix *Index) SearchRange(q *Query, radius float64) ([]SearchResult, error) {
	if q.Len() != ix.n {
		return nil, fmt.Errorf("lbkeogh: query length %d != indexed length %d", q.Len(), ix.n)
	}
	if radius <= 0 {
		return nil, fmt.Errorf("lbkeogh: radius must be positive")
	}
	var rs []index.Result
	switch kern := q.searcher.Kernel().(type) {
	case wedge.ED:
		rs = ix.ix.RangeED(q.rs, radius, &q.counter)
	case wedge.DTW:
		rs = ix.ix.RangeDTW(q.rs, kern.R, 0, radius, &q.counter)
	default:
		return nil, fmt.Errorf("lbkeogh: range search supports Euclidean and DTW measures, not %s", q.measure.Name())
	}
	out := make([]SearchResult, len(rs))
	for i, r := range rs {
		out[i] = SearchResult{Index: r.Index, Dist: r.Dist, Rotation: q.rotation(r.Member)}
	}
	return out, nil
}

// Search answers the query exactly against the indexed database: same
// result as Query.Search over the same data, but touching only the objects
// whose compressed lower bound cannot rule them out. Supports the Euclidean
// and DTW measures (LCSS queries fall back to a full scan).
func (ix *Index) Search(q *Query) (SearchResult, error) {
	if q.Len() != ix.n {
		return SearchResult{}, fmt.Errorf("lbkeogh: query length %d != indexed length %d", q.Len(), ix.n)
	}
	var r index.Result
	switch kern := q.searcher.Kernel().(type) {
	case wedge.ED:
		r = ix.ix.SearchED(q.rs, &q.counter)
	case wedge.DTW:
		r = ix.ix.SearchDTW(q.rs, kern.R, 0, &q.counter)
	default:
		// No admissible compressed bound implemented: exact fallback that
		// still fetches everything once.
		best := index.Result{Index: -1, Dist: -1}
		sc := core.NewSearcher(q.rs, q.searcher.Kernel(), core.Wedge, core.SearcherConfig{Obs: &ix.obs})
		bestDist := -1.0
		for i := 0; i < ix.m; i++ {
			series := ix.ix.Fetch(i)
			m := sc.MatchSeries(series, bestDist, &q.counter)
			if m.Found() && (best.Index < 0 || m.Dist < best.Dist) {
				best = index.Result{Index: i, Dist: m.Dist, Member: m.Member}
				bestDist = m.Dist
			}
		}
		r = best
	}
	if r.Index < 0 {
		return SearchResult{}, fmt.Errorf("lbkeogh: index search found no result")
	}
	return SearchResult{Index: r.Index, Dist: r.Dist, Rotation: q.rotation(r.Member)}, nil
}
